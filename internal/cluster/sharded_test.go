package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"bcc/internal/faults"
	"bcc/internal/optimize"
	"bcc/internal/vecmath"
)

// The sharded-master conformance suite: Config.MasterShards must be a pure
// performance knob. For every fault scenario, in barrier and pipelined mode,
// on the sim, live and tcp runtimes, a sharded run must reproduce the
// unsharded run exactly — identical per-iteration stats, bit-identical final
// weights and an identical fault-event trace — for every tested shard count,
// including configured counts above the model's chunk count (clamped by
// effectiveShards rather than materializing empty tail shards). The matrix
// runs at a small
// wire chunk so the shard boundaries genuinely split the 12-dimensional
// test model (the default 512-element chunk would put every coordinate on
// shard 0).

// shardedChunk makes shardBounds split the dim-12 conformance model into
// real multi-coordinate slices: chunk 4 gives M=2 the split [0,8)|[8,12),
// and M=4 exceeds the 3 wire chunks, so effectiveShards clamps it to the
// split [0,4)|[4,8)|[8,12) — the M=4 cells pin that over-sharded configs
// stay bit-identical while materializing no empty tail shard (no goroutine,
// no listener, no Result.Shards entry).
const shardedChunk = 4

func shardedMut(m int) func(*Config) {
	return func(cfg *Config) { cfg.MasterShards = m }
}

// compareScenarioRuns asserts run `got` is indistinguishable from `ref` in
// every runtime-independent observable. wall also compares the virtual
// decode walls (sim vs sim only; live walls are real time).
func compareScenarioRuns(t *testing.T, label string, got, ref scenarioRun, wall bool) {
	t.Helper()
	if len(got.res.Iters) != len(ref.res.Iters) {
		t.Fatalf("%s completed %d iterations, reference %d", label, len(got.res.Iters), len(ref.res.Iters))
	}
	for i, it := range got.res.Iters {
		want := ref.res.Iters[i]
		// The NaN Loss sentinel compares unequal to itself; neutralize it so
		// struct equality checks the rest. Live timings and measured wire
		// bytes are real observations (the scatter plane's framing genuinely
		// differs), so they are excluded like the unsharded suite excludes
		// them.
		it.Loss, want.Loss = 0, 0
		if !wall {
			it.Wall, want.Wall = 0, 0
			it.Comm, want.Comm = 0, 0
			it.WireBytesIn, want.WireBytesIn = 0, 0
			it.WireBytesOut, want.WireBytesOut = 0, 0
		}
		if it != want {
			t.Errorf("%s iter %d: stats %+v, reference %+v", label, i, it, want)
		}
	}
	if d := vecmath.MaxAbsDiff(got.res.FinalW, ref.res.FinalW); d != 0 {
		t.Errorf("%s final weights differ from reference by %v", label, d)
	}
	if gotTr, wantTr := strings.Join(got.events, "\n"), strings.Join(ref.events, "\n"); gotTr != wantTr {
		t.Errorf("%s fault-event trace:\n%s\nreference saw:\n%s", label, gotTr, wantTr)
	}
}

// TestShardedMasterConformance runs the scenario matrix sharded: sim at
// M ∈ {1, 2, 4} against the unsharded sim reference, and the live/tcp
// runtimes at M ∈ {2, 4} (M=1 never engages the shard group — the
// MasterShards > 1 gate — so its live behaviour IS the unsharded suite's).
func TestShardedMasterConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("staggered live runs sleep real time")
	}
	comm := CommOptions{Chunk: shardedChunk}
	for _, name := range faults.Names() {
		for _, pipelined := range []bool{false, true} {
			name, pipelined := name, pipelined
			mode := "barrier"
			if pipelined {
				mode = "pipelined"
			}
			t.Run(name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				ref := runScenarioCfg(t, name, pipelined, comm, nil, nil)
				if len(ref.res.Iters) != scenarioIters {
					t.Fatalf("unsharded sim completed %d iterations, want %d", len(ref.res.Iters), scenarioIters)
				}
				for _, m := range []int{1, 2, 4} {
					got := runScenarioCfg(t, name, pipelined, comm, shardedMut(m), nil)
					compareScenarioRuns(t, fmt.Sprintf("sim/M=%d", m), got, ref, true)
					if m > 1 {
						checkShardStats(t, fmt.Sprintf("sim/M=%d", m), got.res, m, shardedChunk, false)
					}
				}
				for _, m := range []int{2, 4} {
					for _, rt := range scenarioRuntimes() {
						label := fmt.Sprintf("%s/M=%d", rt.name, m)
						got := runScenarioCfg(t, name, pipelined, comm, shardedMut(m), rt.run)
						compareScenarioRuns(t, label, got, ref, false)
						checkShardStats(t, label, got.res, m, shardedChunk, rt.name == "tcp-wire")
					}
				}
			})
		}
	}
}

// checkShardStats validates the Result.Shards invariants: one entry per
// effective shard (the configured count clamped to the model's wire-chunk
// count — empty tail shards are never materialized), ranges partitioning
// [0, dim), every shard having decoded every iteration, and byte
// attribution present on every shard (measured on the scatter plane,
// modelled elsewhere).
func checkShardStats(t *testing.T, label string, res *Result, m, chunk int, measured bool) {
	t.Helper()
	if len(res.Shards) == 0 {
		t.Fatalf("%s: Result.Shards is empty", label)
	}
	dim := res.Shards[len(res.Shards)-1].Hi
	want := effectiveShards(dim, m, chunk)
	if len(res.Shards) != want {
		t.Fatalf("%s: Result.Shards has %d entries, want %d (M=%d clamped to the chunk count)", label, len(res.Shards), want, m)
	}
	at := 0
	for s, st := range res.Shards {
		if st.Shard != s || st.Lo != at || st.Hi < st.Lo {
			t.Fatalf("%s: shard %d range [%d,%d) does not continue partition at %d", label, s, st.Lo, st.Hi, at)
		}
		at = st.Hi
		if st.Iters != len(res.Iters) {
			t.Errorf("%s: shard %d decoded %d iterations, run had %d", label, s, st.Iters, len(res.Iters))
		}
		if st.Hi > st.Lo && st.SliceBytesIn <= 0 {
			t.Errorf("%s: shard %d (width %d) attributed no bytes (measured=%v)", label, s, st.Hi-st.Lo, measured)
		}
	}
}

// TestShardedGoldenTraces replays every scenario golden with a sharded
// master: the full event trace — arrival order, counted marks, decode walls,
// gradient norms — must match the unsharded golden files byte for byte.
func TestShardedGoldenTraces(t *testing.T) {
	for _, name := range faults.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, m := range []int{2, 4} {
				got := goldenTrace(t, name, func(cfg *Config) {
					cfg.MasterShards = m
					cfg.Comm = CommOptions{Chunk: shardedChunk}
				})
				path := filepath.Join("testdata", "scenario_"+name+".golden")
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file: %v", err)
				}
				if got != string(want) {
					t.Fatalf("M=%d trace drifted from %s:\n--- got ---\n%s--- want ---\n%s", m, path, got, want)
				}
			}
		})
	}
}

// TestShardedScatterMeasuredBytes pins the distributed scatter plane
// end-to-end at a dimension big enough for real slices: a drained tcp run
// with a sharded master must (a) reproduce the unsharded tcp run's weights
// bit for bit, (b) measure genuinely positive per-shard ingress on every
// non-empty shard, and (c) account per-shard bytes that sum close to the
// fabric's total wire-in (the primary connection carries only handshakes and
// broadcasts, which are out-bytes; reply traffic all lands on shard
// listeners).
func TestShardedScatterMeasuredBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp run sleeps real time")
	}
	opts := LiveOptions{TimeScale: 1e-6, Timeout: 60 * time.Second, TCP: true, Codec: "wire", Drain: true}
	run := func(shards int) *Result {
		cfg, _ := buildRunDim(t, "bcc", 8, 8, 4, 4, 407, Zero{}, 64)
		cfg.Comm = CommOptions{Chunk: 8}
		cfg.MasterShards = shards
		res, err := RunLive(cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(0)
	res := run(4)
	if d := vecmath.MaxAbsDiff(res.FinalW, ref.FinalW); d != 0 {
		t.Fatalf("scatter weights differ from unsharded tcp by %v", d)
	}
	checkShardStats(t, "tcp/M=4", res, 4, 8, true)
	var shardSum int64
	for _, st := range res.Shards {
		shardSum += st.SliceBytesIn
	}
	total := int64(res.TotalWireIn)
	if shardSum <= 0 || shardSum > total {
		t.Fatalf("per-shard bytes sum %d outside (0, total wire-in %d]", shardSum, total)
	}
	// Everything but the workers' primary hellos arrives on shard listeners.
	if float64(shardSum) < 0.9*float64(total) {
		t.Fatalf("shard listeners saw %d of %d wire-in bytes; scatter should carry nearly all ingress", shardSum, total)
	}
}

// TestShardedLossyCodecsBitExact pins the transform-once rule of the scatter
// plane: under a lossy payload codec (topk, f32) the sharded tcp runtime
// must still produce exactly the unsharded runtime's weights, because the
// worker applies the transform in-process before slicing.
func TestShardedLossyCodecsBitExact(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp run sleeps real time")
	}
	for _, payload := range []string{"topk", "f32"} {
		payload := payload
		t.Run(payload, func(t *testing.T) {
			t.Parallel()
			opts := LiveOptions{TimeScale: 1e-6, Timeout: 60 * time.Second, TCP: true, Codec: "wire"}
			run := func(shards int) *Result {
				cfg, _ := buildRunDim(t, "bcc", 8, 8, 4, 3, 408, Zero{}, 64)
				cfg.Comm = CommOptions{Payload: payload, Chunk: 8}
				if payload == "topk" {
					cfg.Comm.TopK = 16
				}
				cfg.MasterShards = shards
				res, err := RunLive(cfg, opts)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			ref, sharded := run(0), run(2)
			if d := vecmath.MaxAbsDiff(sharded.FinalW, ref.FinalW); d != 0 {
				t.Fatalf("%s: sharded weights differ from unsharded by %v", payload, d)
			}
		})
	}
}

// TestShardedEngineNoGoroutineLeaks exercises the shard group's teardown on
// the abnormal exit paths — context cancellation mid-run and fail-fast
// degradation — and requires the process goroutine count to settle back to
// its baseline: neither shard loops nor scatter readers may outlive the run.
func TestShardedEngineNoGoroutineLeaks(t *testing.T) {
	settle := func(baseline int) bool {
		for i := 0; i < 50; i++ {
			if runtime.NumGoroutine() <= baseline {
				return true
			}
			time.Sleep(20 * time.Millisecond)
		}
		return false
	}
	t.Run("cancel", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		cfg, _ := buildRun(t, "bcc", 8, 8, 4, 1000, 409, Fixed{PerPoint: 1e-4})
		cfg.Comm = CommOptions{Chunk: shardedChunk}
		cfg.MasterShards = 4
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(50 * time.Millisecond)
			cancel()
		}()
		_, err := RunLiveContext(ctx, cfg, LiveOptions{TimeScale: 1e-3, Timeout: 30 * time.Second, TCP: true})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if !settle(baseline) {
			t.Fatalf("goroutines did not settle after cancel: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
	})
	t.Run("degrade", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		cfg, _ := buildRun(t, "bcc", 8, 8, 4, 6, 410, Zero{})
		cfg.Comm = CommOptions{Chunk: shardedChunk}
		cfg.MasterShards = 2
		plan := &faults.Plan{N: 8}
		for w := 0; w < 7; w++ {
			plan.Crashes = append(plan.Crashes, faults.Crash{Worker: w, At: 2})
		}
		cfg.Faults = plan
		_, err := RunLive(cfg, LiveOptions{TimeScale: 1e-6, Timeout: 30 * time.Second, TCP: true})
		if !errors.Is(err, ErrBelowThreshold) {
			t.Fatalf("err = %v, want ErrBelowThreshold", err)
		}
		if !settle(baseline) {
			t.Fatalf("goroutines did not settle after degradation: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
	})
}

// TestShardedFallbackSerial pins the documented silent fallback: a scheme
// whose decoder lacks DecodeSliceInto capability is impossible to construct
// here (all registry decoders implement it), so the fallback is pinned via
// an optimizer without UpdateSlice — the run must succeed, match the serial
// result exactly, and record no shard stats.
func TestShardedFallbackSerial(t *testing.T) {
	run := func(shards int) *Result {
		cfg, _ := buildRun(t, "bcc", 8, 8, 4, 4, 411, Zero{})
		cfg.Comm = CommOptions{Chunk: shardedChunk}
		cfg.MasterShards = shards
		cfg.Opt = scalarOnlyOptimizer{cfg.Opt}
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref, got := run(0), run(4)
	if d := vecmath.MaxAbsDiff(got.FinalW, ref.FinalW); d != 0 {
		t.Fatalf("fallback weights differ by %v", d)
	}
	if len(got.Shards) != 0 {
		t.Fatalf("fallback run recorded %d shard stats, want none", len(got.Shards))
	}
}

// scalarOnlyOptimizer hides the SliceUpdater capability of the wrapped
// optimizer, leaving only the plain Optimizer interface.
type scalarOnlyOptimizer struct{ inner optimize.Optimizer }

func (o scalarOnlyOptimizer) Query() []float64      { return o.inner.Query() }
func (o scalarOnlyOptimizer) Update(grad []float64) { o.inner.Update(grad) }
func (o scalarOnlyOptimizer) Iterate() []float64    { return o.inner.Iterate() }
func (o scalarOnlyOptimizer) Step() int             { return o.inner.Step() }

// TestShardBounds pins the shard-map construction: chunk-aligned contiguous
// boundaries, balanced in whole chunks, clamped to dim, with empty tail
// shards when shards exceed chunks.
func TestShardBounds(t *testing.T) {
	cases := []struct {
		dim, shards, chunk int
		want               []int
	}{
		{12, 2, 4, []int{0, 8, 12}},
		{12, 4, 4, []int{0, 4, 8, 12, 12}},
		{12, 1, 4, []int{0, 12}},
		{12, 2, 512, []int{0, 12, 12}},
		{1024, 4, 512, []int{0, 512, 1024, 1024, 1024}},
		{257, 3, 1, []int{0, 86, 172, 257}},
		{0, 2, 4, []int{0, 0, 0}},
	}
	for _, c := range cases {
		got := shardBounds(c.dim, c.shards, c.chunk)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("shardBounds(%d,%d,%d) = %v, want %v", c.dim, c.shards, c.chunk, got, c.want)
		}
		for i := 0; i+1 < len(got); i++ {
			if got[i] > got[i+1] {
				t.Errorf("shardBounds(%d,%d,%d) not monotone: %v", c.dim, c.shards, c.chunk, got)
			}
		}
	}
}

// TestSimZeroAllocsSharded extends the zero-alloc invariant to the sharded
// engine: with MasterShards set, a steady-state sim iteration still performs
// zero heap allocations per worker message — dispatch is two channel
// operations per shard and the slice decode/update paths reuse the same
// buffers the serial path does.
func TestSimZeroAllocsSharded(t *testing.T) {
	const shortIters, longIters = 2, 10
	mk := func(iters int) (*Config, *simTransport) {
		cfg, _ := buildRun(t, "bcc", 8, 8, 2, iters, 77, Zero{})
		cfg.Comm = CommOptions{Chunk: shardedChunk}
		cfg.MasterShards = 4
		return cfg, newSimTransport(cfg)
	}
	cfgShort, trShort := mk(shortIters)
	cfgLong, trLong := mk(longIters)
	run := func(cfg *Config, tr *simTransport) {
		if _, err := RunTransport(cfg, tr); err != nil {
			t.Fatal(err)
		}
	}
	run(cfgShort, trShort)
	run(cfgLong, trLong)
	short := testing.AllocsPerRun(10, func() { run(cfgShort, trShort) })
	long := testing.AllocsPerRun(10, func() { run(cfgLong, trLong) })
	if long > short {
		_, n, _ := cfgLong.Plan.Params()
		extraMsgs := float64((longIters - shortIters) * n)
		t.Fatalf("sharded steady-state iterations allocate: %.1f allocs for %d iterations vs %.1f for %d (%.3f allocs per worker message, want 0)",
			long, longIters, short, shortIters, (long-short)/extraMsgs)
	}
}

// TestShardedValidation pins MasterShards validation and that a sharded
// config converges like an unsharded one end to end (weights finite and
// loss-reducing is already covered by conformance; this is the config
// surface).
func TestShardedValidation(t *testing.T) {
	cfg, _ := buildRun(t, "bcc", 8, 8, 4, 2, 412, Zero{})
	cfg.MasterShards = -1
	if _, err := RunSim(cfg); err == nil || !strings.Contains(err.Error(), "MasterShards") {
		t.Fatalf("negative MasterShards accepted: %v", err)
	}
	cfg.MasterShards = 64 // more shards than chunks: empty tails, still exact
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.FinalW {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatal("sharded run produced non-finite weights")
		}
	}
}
