package cluster

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"bcc/internal/faults"
	"bcc/internal/trace"
)

// The golden-trace regression test freezes the sim runtime's full event
// trace — fault events, worker arrival order with counted marks, decode
// points and gradient norms — for every named scenario. Engine or
// transport refactors that silently reorder arrivals, move a decode point
// or drop a fault event change these files and fail the diff.
//
// Regenerate after an INTENTIONAL semantic change with:
//
//	go test ./internal/cluster -run TestScenarioGoldenTraces -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite the scenario golden trace files")

// goldenTrace renders one scenario's sim run as a stable text trace. mut, if
// non-nil, adjusts the Config first — the sharded-master conformance suite
// replays the goldens with MasterShards set, pinning that sharding moves no
// decode point and changes no norm.
func goldenTrace(t *testing.T, name string, mut func(*Config)) string {
	t.Helper()
	plan, err := faults.Scenario(name, scenarioN, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := buildRun(t, "bcc", scenarioM, scenarioN, scenarioR, scenarioIters, scenarioSeed,
		staggered(scenarioN, 4*scenarioR))
	cfg.Faults = plan
	if mut != nil {
		mut(cfg)
	}
	rec := &trace.Recorder{}
	cfg.Trace = rec
	perIter := make([][]string, scenarioIters)
	cfg.Observer = ObserverFuncs{Fault: func(ev faults.Event) {
		perIter[ev.Iter] = append(perIter[ev.Iter], ev.String())
	}}
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("scenario %s: %v", name, err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario %s: bcc m=%d n=%d r=%d seed=%d fault-seed=9\n",
		name, scenarioM, scenarioN, scenarioR, scenarioSeed)
	for i, st := range res.Iters {
		fmt.Fprintf(&sb, "iter %d\n", i)
		if len(perIter[i]) > 0 {
			fmt.Fprintf(&sb, "  faults: %s\n", strings.Join(perIter[i], "; "))
		}
		var arrivals []string
		for _, span := range rec.Iterations[i].Spans {
			mark := ""
			if span.Counted {
				mark = "*"
			}
			arrivals = append(arrivals, fmt.Sprintf("w%d%s@%s", span.Worker, mark,
				strconv.FormatFloat(span.Arrive, 'g', -1, 64)))
		}
		fmt.Fprintf(&sb, "  arrivals: %s\n", strings.Join(arrivals, " "))
		fmt.Fprintf(&sb, "  decode: wall=%s K=%d units=%s |g|=%s\n",
			strconv.FormatFloat(st.Wall, 'g', -1, 64), st.WorkersHeard,
			strconv.FormatFloat(st.Units, 'g', -1, 64),
			strconv.FormatFloat(st.GradNorm, 'g', -1, 64))
	}
	return sb.String()
}

// TestScenarioGoldenTraces diffs every named scenario's sim trace against
// its checked-in golden file.
func TestScenarioGoldenTraces(t *testing.T) {
	for _, name := range faults.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			got := goldenTrace(t, name, nil)
			path := filepath.Join("testdata", "scenario_"+name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Fatalf("trace drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
