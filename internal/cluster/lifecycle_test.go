package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"bcc/internal/faults"
)

// Lifecycle tests: context cancellation with partial results and clean
// teardown on every runtime, observer callback fidelity, early stopping and
// the periodic checkpoint hook.

// waitNoExtraGoroutines polls until the goroutine count returns to the
// before level (workers mid-sleep finish their bounded scaled sleeps and
// exit on the closed fabric), failing with a stack dump if it never does.
func waitNoExtraGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after teardown\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelMidRunPartialResult cancels a run from inside an OnIteration
// callback on each runtime and asserts the contract: the completed
// iterations come back as a partial Result alongside context.Canceled, and
// no worker goroutines, reader goroutines or TCP listeners leak.
func TestCancelMidRunPartialResult(t *testing.T) {
	liveOpts := func(tcp bool) LiveOptions {
		return LiveOptions{TimeScale: 1e-6, Timeout: 30 * time.Second, TCP: tcp}
	}
	runtimes := []struct {
		name string
		run  func(ctx context.Context, cfg *Config) (*Result, error)
	}{
		{"sim", RunSimContext},
		{"live", func(ctx context.Context, cfg *Config) (*Result, error) {
			return RunLiveContext(ctx, cfg, liveOpts(false))
		}},
		{"tcp", func(ctx context.Context, cfg *Config) (*Result, error) {
			return RunLiveContext(ctx, cfg, liveOpts(true))
		}},
	}
	for i, rt := range runtimes {
		t.Run(rt.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			cfg, _ := buildRun(t, "bcc", 8, 8, 2, 50, 90+uint64(i), Zero{})
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			const stopAfter = 3
			seen := 0
			cfg.Observer = ObserverFuncs{Iteration: func(IterStats) {
				seen++
				if seen == stopAfter {
					cancel()
				}
			}}
			res, err := rt.run(ctx, cfg)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res == nil {
				t.Fatal("cancelled run returned no partial result")
			}
			if len(res.Iters) != stopAfter {
				t.Fatalf("partial result has %d iterations, want %d", len(res.Iters), stopAfter)
			}
			waitNoExtraGoroutines(t, before)
		})
	}
}

// TestDeadlineExpiresMidIteration wedges an iteration (uncoded needs every
// worker; one worker is catastrophically slow) so the context deadline
// fires while the master blocks for replies: the run must return with zero
// completed iterations, context.DeadlineExceeded, and full teardown once
// the straggler's bounded sleep ends.
func TestDeadlineExpiresMidIteration(t *testing.T) {
	before := runtime.NumGoroutine()
	// buildRun gives each uncoded worker 1 unit x 4 points. Worker 5:
	// compute 0.05*4*100 = 20 virtual s; at TimeScale 0.05 that is a 1 s
	// real sleep, far past the 150 ms deadline. The rest arrive in ~40 ms.
	lat := Fixed{PerPoint: 0.05, Factor: []float64{1, 1, 1, 1, 1, 100}}
	cfg, _ := buildRun(t, "uncoded", 6, 6, 1, 3, 95, lat)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := RunLiveContext(ctx, cfg, LiveOptions{TimeScale: 0.05, Timeout: 30 * time.Second})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil || len(res.Iters) != 0 {
		t.Fatalf("expected empty partial result, got %+v", res)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not interrupt the blocked master: took %v", elapsed)
	}
	waitNoExtraGoroutines(t, before)
}

// TestObserverSeesEveryIteration is the engine-level fidelity contract: an
// observer on a sim run sees exactly Iterations OnIteration callbacks whose
// stats are identical to the returned Result.Iters, one OnDecode per
// iteration in order, and OnRunEnd with the very Result the run returns.
func TestObserverSeesEveryIteration(t *testing.T) {
	const iterations = 7
	cfg, _ := buildRun(t, "bcc", 10, 10, 2, iterations, 91, Zero{})
	cfg.LossEvery = 1 // record Loss every iteration so IterStats are comparable
	var got []IterStats
	var decodes []DecodeEvent
	var end *Result
	cfg.Observer = ObserverFuncs{
		Iteration: func(st IterStats) { got = append(got, st) },
		Decode:    func(ev DecodeEvent) { decodes = append(decodes, ev) },
		RunEnd:    func(r *Result) { end = r },
	}
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != iterations || len(res.Iters) != iterations {
		t.Fatalf("observer saw %d iterations, result has %d, want %d", len(got), len(res.Iters), iterations)
	}
	for i := range got {
		if got[i] != res.Iters[i] {
			t.Fatalf("iteration %d: observer saw %+v, result holds %+v", i, got[i], res.Iters[i])
		}
	}
	if len(decodes) != iterations {
		t.Fatalf("observer saw %d decode events, want %d", len(decodes), iterations)
	}
	for i, ev := range decodes {
		if ev.Iter != i {
			t.Fatalf("decode event %d reports iteration %d", i, ev.Iter)
		}
		if ev.WorkersHeard != res.Iters[i].WorkersHeard {
			t.Fatalf("decode event %d heard %d workers, stats say %d", i, ev.WorkersHeard, res.Iters[i].WorkersHeard)
		}
	}
	if end != res {
		t.Fatalf("OnRunEnd saw %p, run returned %p", end, res)
	}
}

// TestObserverEquivalentAcrossRuntimes pins the callback stream to the
// engine, not the transport: with the staggered latency fixing the arrival
// order, the same spec and seed produce the same OnIteration sequence
// (thresholds, loads, gradient norms) on sim and live.
func TestObserverEquivalentAcrossRuntimes(t *testing.T) {
	if testing.Short() {
		t.Skip("staggered live runs sleep real time")
	}
	const m, n, r, iters = 8, 6, 2, 2
	collect := func(run func(cfg *Config) (*Result, error)) []IterStats {
		cfg, _ := buildRun(t, "bcc", m, n, r, iters, 92, staggered(n, 4*r))
		var got []IterStats
		cfg.Observer = ObserverFuncs{Iteration: func(st IterStats) { got = append(got, st) }}
		if _, err := run(cfg); err != nil {
			t.Fatal(err)
		}
		return got
	}
	sim := collect(RunSim)
	live := collect(func(cfg *Config) (*Result, error) {
		return RunLive(cfg, LiveOptions{TimeScale: liveEquivScale, Timeout: 60 * time.Second})
	})
	if len(sim) != len(live) {
		t.Fatalf("sim observed %d iterations, live %d", len(sim), len(live))
	}
	for i := range sim {
		if sim[i].WorkersHeard != live[i].WorkersHeard || sim[i].Units != live[i].Units ||
			sim[i].GradNorm != live[i].GradNorm {
			t.Fatalf("iteration %d: sim %+v vs live %+v", i, sim[i], live[i])
		}
	}
}

// TestStopWhenEndsRunEarly checks the early-stop hook: the run ends without
// error after the first satisfying iteration.
func TestStopWhenEndsRunEarly(t *testing.T) {
	cfg, _ := buildRun(t, "bcc", 8, 8, 2, 30, 93, Zero{})
	cfg.StopWhen = func(st IterStats) bool { return st.Iter >= 4 }
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 5 {
		t.Fatalf("run recorded %d iterations, want 5 (early stop after iter 4)", len(res.Iters))
	}
}

// TestCheckpointHookCadence checks the periodic checkpoint hook fires with
// the completed-iteration counts and that a failing hook aborts the run
// while preserving the finished iterations.
func TestCheckpointHookCadence(t *testing.T) {
	cfg, _ := buildRun(t, "bcc", 8, 8, 2, 5, 94, Zero{})
	var calls []int
	cfg.CheckpointEvery = 2
	cfg.Checkpoint = func(completed int) error {
		calls = append(calls, completed)
		return nil
	}
	if _, err := RunSim(cfg); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != 2 || calls[1] != 4 {
		t.Fatalf("checkpoint calls %v, want [2 4]", calls)
	}

	cfg2, _ := buildRun(t, "bcc", 8, 8, 2, 5, 94, Zero{})
	cfg2.CheckpointEvery = 2
	boom := fmt.Errorf("disk full")
	cfg2.Checkpoint = func(completed int) error {
		if completed == 4 {
			return boom
		}
		return nil
	}
	res, err := RunSim(cfg2)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the checkpoint error", err)
	}
	if res == nil || len(res.Iters) != 4 {
		t.Fatalf("aborted run should keep its 4 finished iterations, got %+v", res)
	}
}

// TestFaultPlanCancelMidRunPartialResult cancels a run mid-flight while a
// FaultPlan is actively crashing and slowing workers, on each runtime: the
// completed iterations must come back as a partial Result alongside
// context.Canceled, and no worker goroutines, reader goroutines or TCP
// listeners may leak — a crashed (skipping) worker must still observe the
// fabric teardown.
func TestFaultPlanCancelMidRunPartialResult(t *testing.T) {
	liveOpts := func(tcp bool) LiveOptions {
		return LiveOptions{TimeScale: 1e-6, Timeout: 30 * time.Second, TCP: tcp}
	}
	runtimes := []struct {
		name string
		run  func(ctx context.Context, cfg *Config) (*Result, error)
	}{
		{"sim", RunSimContext},
		{"live", func(ctx context.Context, cfg *Config) (*Result, error) {
			return RunLiveContext(ctx, cfg, liveOpts(false))
		}},
		{"tcp", func(ctx context.Context, cfg *Config) (*Result, error) {
			return RunLiveContext(ctx, cfg, liveOpts(true))
		}},
	}
	plan := &faults.Plan{N: 8,
		// Worker 1 is down from iteration 1 on — it is mid-crash when the
		// cancel lands; worker 2 is in a slowdown window.
		Crashes:   []faults.Crash{{Worker: 1, At: 1}, {Worker: 3, At: 2, RestartAfter: 2}},
		Slowdowns: []faults.Slowdown{{Worker: 2, From: 0, Factor: 3}},
	}
	for i, rt := range runtimes {
		t.Run(rt.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			cfg, _ := buildRun(t, "bcc", 8, 8, 4, 50, 190+uint64(i), Zero{})
			cfg.Faults = plan
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			const stopAfter = 3
			seen := 0
			cfg.Observer = ObserverFuncs{Iteration: func(IterStats) {
				seen++
				if seen == stopAfter {
					cancel()
				}
			}}
			res, err := rt.run(ctx, cfg)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res == nil || len(res.Iters) != stopAfter {
				t.Fatalf("partial result %+v, want %d iterations", res, stopAfter)
			}
			waitNoExtraGoroutines(t, before)
		})
	}
}

// TestFaultPlanDegradeTeardown runs a plan that crashes the cluster below
// the decodable threshold mid-run on the live runtimes: the explicit
// degradation error must also tear every worker goroutine down (the
// crashed-forever workers included).
func TestFaultPlanDegradeTeardown(t *testing.T) {
	for _, tcp := range []bool{false, true} {
		name := "live"
		if tcp {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			cfg, _ := buildRun(t, "bcc", 8, 8, 4, 10, 195, Zero{})
			plan := &faults.Plan{N: 8}
			for w := 0; w < 7; w++ {
				plan.Crashes = append(plan.Crashes, faults.Crash{Worker: w, At: 2})
			}
			cfg.Faults = plan
			res, err := RunLive(cfg, LiveOptions{TimeScale: 1e-6, Timeout: 30 * time.Second, TCP: tcp})
			if !errors.Is(err, ErrBelowThreshold) {
				t.Fatalf("err = %v, want ErrBelowThreshold", err)
			}
			if res == nil || len(res.Iters) != 2 {
				t.Fatalf("partial result %+v, want 2 iterations", res)
			}
			waitNoExtraGoroutines(t, before)
		})
	}
}

// TestMultiObserver checks fan-out and nil-squashing.
func TestMultiObserver(t *testing.T) {
	if MultiObserver(nil, nil) != nil {
		t.Fatal("all-nil MultiObserver should collapse to nil")
	}
	a, b := 0, 0
	obs := MultiObserver(
		ObserverFuncs{Iteration: func(IterStats) { a++ }},
		nil,
		ObserverFuncs{Iteration: func(IterStats) { b++ }},
	)
	cfg, _ := buildRun(t, "bcc", 8, 8, 2, 3, 96, Zero{})
	cfg.Observer = obs
	if _, err := RunSim(cfg); err != nil {
		t.Fatal(err)
	}
	if a != 3 || b != 3 {
		t.Fatalf("fan-out counts a=%d b=%d, want 3 each", a, b)
	}
}
