package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The TCP fabric runs the identical master/worker protocol over real
// loopback sockets — the messages genuinely leave the process boundary
// through the kernel's TCP stack. It backs both the in-process
// RunLive(..., TCP: true) mode and the multi-process cmd/bcccluster tool.
// Frames are encoded by a pluggable codec: "gob" (default) or the compact
// "wire" binary codec (LiveOptions.Codec); both endpoints must agree.

// Hello is the first frame a worker sends after dialing. Beyond the worker
// index it carries the worker's resolved comm-plane parameters — payload
// codec name, top-K count and effective chunk size — which the master
// verifies against its own before admitting the connection: a codec mismatch
// would silently corrupt every payload, so it is rejected at handshake time.
type Hello struct {
	Worker  int
	Payload string
	TopK    int
	Chunk   int
	// Shards is the master-shard count the worker was configured with (0 =
	// unsharded). Under the scatter data plane (scatter.go) workers slice
	// every reply across per-shard listeners, so a shard-map disagreement
	// would land coordinates on the wrong shard; the handshake rejects it
	// like a codec mismatch.
	Shards int
}

type tcpFabric struct {
	ln      net.Listener
	conns   []net.Conn
	codecs  []frameCodec
	replies chan Reply
	alive   int
	mu      sync.Mutex
	closed  bool
	// readers tracks the per-connection reader goroutines so DrainFabric can
	// wait for every worker's clean close before the master tears the
	// connections down.
	readers sync.WaitGroup
	// Measured wire traffic of the master's connections, counted at the
	// connection layer (every byte crossing the sockets, framing included).
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

// WireTotals implements wireCounter: cumulative bytes received/sent across
// all worker connections since the fabric accepted them.
func (f *tcpFabric) WireTotals() (in, out int64) {
	return f.bytesIn.Load(), f.bytesOut.Load()
}

// countingConn counts every byte crossing a master-side connection into the
// fabric's totals. Wrapping the conn (rather than instrumenting codecs) means
// the count is the genuine wire traffic: frame headers, handshakes and
// payloads alike, for any frame codec.
type countingConn struct {
	net.Conn
	in, out *atomic.Int64
}

// CountConn wraps conn so every byte read and written is added to in and
// out. The service daemon wraps each job's accepted data-plane connections
// a second time with its fleet-level counters, so per-job fabric totals and
// fleet totals are both measured at the connection layer.
func CountConn(conn net.Conn, in, out *atomic.Int64) net.Conn {
	return countingConn{Conn: conn, in: in, out: out}
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// newTCPFabric starts a loopback listener, spawns one in-process worker
// goroutine per alive worker that dials it, and wires reader goroutines
// into the replies channel.
func newTCPFabric(cfg *Config, opts LiveOptions) (fabric, error) {
	_, n, _ := cfg.Plan.Params()
	dead := cfg.deadSet()
	alive := n - len(dead)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: tcp listen: %w", err)
	}

	// Sharded masters scatter the data plane: one extra listener per master
	// shard receives the workers' reply slices (scatter.go).
	shards := 0
	var shardLns []net.Listener
	var shardAddrs []string
	if cfg.MasterShards > 1 {
		// Clamped to the chunk count: empty tail shards would each hold an
		// open data listener (and a scatter goroutine per worker) for a slice
		// that can never receive a byte.
		shards = effectiveShards(cfg.Model.Dim(), cfg.MasterShards, cfg.comm().pc.ChunkElems())
		shardLns, err = listenShards(shards)
		if err != nil {
			ln.Close()
			return nil, err
		}
		shardAddrs = make([]string, shards)
		for s, sl := range shardLns {
			shardAddrs[s] = sl.Addr().String()
		}
	}
	closeShards := func() {
		for _, sl := range shardLns {
			sl.Close()
		}
	}

	// Spawn workers that dial the listener and speak the protocol.
	addr := ln.Addr().String()
	for w := 0; w < n; w++ {
		if dead[w] {
			continue
		}
		env := WorkerEnv{
			Index:              w,
			Plan:               cfg.Plan,
			Model:              cfg.Model,
			Units:              cfg.Units,
			Latency:            cfg.latency(),
			TimeScale:          opts.TimeScale,
			Codec:              opts.Codec,
			Comm:               cfg.Comm,
			Faults:             cfg.Faults,
			ComputeParallelism: cfg.ComputeParallelism,
			Pipelined:          cfg.Pipelined,
			ShardAddrs:         shardAddrs,
		}
		go func() { _ = DialAndServeWorker(addr, env) }()
	}

	primary, err := acceptWorkers(ln, alive, opts.Timeout, opts.Codec, cfg.buffers(), cfg.Comm, cfg.Model.Dim(), shards)
	if err != nil {
		closeShards()
		ln.Close()
		return nil, err
	}
	if shards == 0 {
		return primary, nil
	}
	fab, err := newScatterFabric(primary, shardLns, n, alive, opts.Timeout, opts.Codec, cfg.buffers(), cfg.comm(), cfg.Model.Dim(), shards)
	if err != nil {
		primary.Close()
		return nil, err
	}
	return fab, nil
}

// acceptWorkers accepts exactly `alive` handshaking connections on ln and
// assembles the fabric around them. pool, if non-nil, backs the codecs'
// reply deserialization so gradient payloads land in recycled buffers. comm
// and dim resolve the master's comm plane; each worker's hello must declare
// the same payload codec, top-K and chunk size — and the same master-shard
// count `shards` (0 = unsharded) — or the handshake fails.
func acceptWorkers(ln net.Listener, alive int, timeout time.Duration, codecName string, pool *BufferPool, comm CommOptions, dim, shards int) (*tcpFabric, error) {
	cp, err := comm.resolve(dim)
	if err != nil {
		return nil, err
	}
	f := &tcpFabric{ln: ln, replies: make(chan Reply, alive*4+4), alive: alive}
	f.conns = make([]net.Conn, 0, alive)
	f.codecs = make([]frameCodec, 0, alive)
	for i := 0; i < alive; i++ {
		// Deadline-bound the accept when the listener supports it (TCP
		// listeners do; wrappers forward it), so a worker that never dials
		// cannot wedge the master.
		if tl, ok := ln.(interface{ SetDeadline(time.Time) error }); ok && timeout > 0 {
			if err := tl.SetDeadline(time.Now().Add(timeout)); err != nil {
				f.Close()
				return nil, err
			}
		}
		raw, err := ln.Accept()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("cluster: tcp accept %d/%d: %w", i, alive, err)
		}
		conn := countingConn{Conn: raw, in: &f.bytesIn, out: &f.bytesOut}
		codec, err := newFrameCodec(codecName, conn, pool, cp)
		if err != nil {
			conn.Close()
			f.Close()
			return nil, err
		}
		hello, err := codec.ReadHello()
		if err != nil {
			conn.Close()
			f.Close()
			return nil, fmt.Errorf("cluster: tcp handshake: %w", err)
		}
		if err := cp.checkHello(hello); err != nil {
			conn.Close()
			f.Close()
			return nil, fmt.Errorf("cluster: tcp handshake worker %d: %w", hello.Worker, err)
		}
		if hello.Shards != shards {
			conn.Close()
			f.Close()
			return nil, fmt.Errorf("cluster: tcp handshake worker %d: shard count mismatch: worker %d, master %d",
				hello.Worker, hello.Shards, shards)
		}
		f.conns = append(f.conns, conn)
		f.codecs = append(f.codecs, codec)
		// Reader: stream this worker's replies into the shared channel.
		f.readers.Add(1)
		go func(codec frameCodec) {
			defer f.readers.Done()
			for {
				rep, err := codec.ReadReply()
				if err != nil {
					return
				}
				f.replies <- rep
			}
		}(codec)
	}
	return f, nil
}

func (f *tcpFabric) Broadcast(mu ModelUpdate) error {
	for i, codec := range f.codecs {
		if err := codec.WriteModel(mu); err != nil {
			return fmt.Errorf("cluster: tcp broadcast to conn %d: %w", i, err)
		}
	}
	return nil
}

func (f *tcpFabric) Replies() <-chan Reply { return f.replies }
func (f *tcpFabric) AliveWorkers() int     { return f.alive }

// drainReaders waits (up to timeout) for every connection reader to observe
// its worker's clean close — a worker closes its side after receiving the
// shutdown broadcast — while discarding any stale replies still in flight
// so a full replies channel cannot wedge a reader. It reports whether all
// readers finished in time.
func (f *tcpFabric) drainReaders(timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		f.readers.Wait()
		close(done)
	}()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case <-done:
			return true
		case rep := <-f.replies:
			// In-flight straggler replies from the final iteration: nobody
			// will decode them, drop them so their reader can exit.
			_ = rep
		case <-deadline.C:
			return false
		}
	}
}

// drainer is the optional fabric capability behind DrainFabric: waiting for
// the workers' clean close before the master tears its connections down.
type drainer interface {
	drainReaders(timeout time.Duration) bool
}

// DrainFabric performs the graceful half of fabric teardown, between the
// engine returning and Close: it (re-)broadcasts the shutdown update (best
// effort — the engine already sent one on a normal exit, but an interrupted
// caller may not have) and then waits, bounded by timeout, for every worker
// to close its side of the connection. Without the drain, Close can tear a
// socket down while the worker's last reply is still in flight, turning a
// clean shutdown into a connection reset on the worker. Fabrics without
// real connection readers (the channel fabric) drain trivially. It reports
// whether the fabric drained within the timeout.
func DrainFabric(fab Fabric, timeout time.Duration) bool {
	_ = fab.Broadcast(ModelUpdate{Iter: -1})
	if d, ok := fab.(drainer); ok {
		return d.drainReaders(timeout)
	}
	return true
}

func (f *tcpFabric) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	for _, c := range f.conns {
		_ = c.Close()
	}
	return f.ln.Close()
}

// DialAndServeWorker connects to a master at addr, performs the handshake
// and serves the worker protocol until the connection closes or the master
// sends a shutdown update. It is used by the in-process TCP runtime and by
// the out-of-process worker command. env.Codec selects the frame encoding
// and must match the master's.
func DialAndServeWorker(addr string, env WorkerEnv) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: worker %d dial: %w", env.Index, err)
	}
	defer conn.Close()
	dim := 0
	if env.Model != nil {
		dim = env.Model.Dim()
	}
	cp, err := env.Comm.resolve(dim)
	if err != nil {
		return fmt.Errorf("cluster: worker %d: %w", env.Index, err)
	}
	// The worker's reads are model broadcasts, not replies, so its codec
	// needs no reply pool.
	codec, err := newFrameCodec(env.Codec, conn, nil, cp)
	if err != nil {
		return err
	}
	if env.Bufs == nil && env.Model != nil {
		// A TCP worker's payloads are fully serialized by the time WriteReply
		// returns, so a small private pool recycled in the send path makes
		// the worker's steady-state encode allocation-free too.
		env.Bufs = NewBufferPool(env.Model.Dim(), 64)
	}
	h := cp.hello(env.Index)
	h.Shards = len(env.ShardAddrs)
	if err := codec.WriteHello(h); err != nil {
		return fmt.Errorf("cluster: worker %d hello: %w", env.Index, err)
	}
	// A dedicated reader streams model updates into a channel so the worker
	// loop can observe fresh broadcasts mid-sleep (pipelined cancellation).
	// The codec's read and write halves are independent, so the reader
	// goroutine and the reply writes below do not race. done keeps the
	// reader from leaking on a full buffer if RunWorker exits on a send
	// error.
	updates := make(chan ModelUpdate, 16)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(updates)
		for {
			mu, err := codec.ReadModel()
			if err != nil {
				return
			}
			select {
			case updates <- mu:
			case <-done:
				return
			}
			if mu.Iter < 0 {
				return
			}
		}
	}()
	send := func(r Reply) error {
		err := codec.WriteReply(r)
		// The frame is on the wire (or the connection is broken); either way
		// the payload buffers can go back to the worker's pool.
		recycleMsgs(env.Bufs, r.Msgs)
		return err
	}
	if len(env.ShardAddrs) > 0 {
		// Sharded master: replies scatter as coordinate slices across the
		// per-shard connections; the primary connection carries only the
		// handshake and model broadcasts (scatter.go).
		shardCodecs, closeShards, err := dialShards(env.ShardAddrs, env, cp, dim)
		if err != nil {
			return err
		}
		defer closeShards()
		bounds := shardBounds(dim, len(env.ShardAddrs), cp.pc.ChunkElems())
		send = scatterSend(shardCodecs, bounds, cp.newCoder(), env.Bufs)
	}
	return RunWorker(env, updates, send)
}

// ServeMaster accepts `alive` worker connections on ln and returns a fabric
// for RunWithFabric; used by cmd/bcccluster where workers are separate
// processes. codecName must match the workers' ("" = gob), and comm (with
// the model dimension dim) must match the CommOptions given to every worker
// — each handshake is verified against it. The caller owns ln's lifetime via
// the returned fabric's Close. Reply payloads are allocated per frame here
// (the engine's pool still bounds master-side retention); the in-process TCP
// runtime wires a shared pool instead.
func ServeMaster(ln net.Listener, alive int, timeout time.Duration, codecName string, comm CommOptions, dim int) (Fabric, error) {
	return acceptWorkers(ln, alive, timeout, codecName, nil, comm, dim, 0)
}

// ServeMasterPool is ServeMaster with a caller-supplied payload-buffer
// pool: reply payloads deserialize straight into pooled buffers that the
// engine recycles after each decode, so a long-running host (the service
// daemon, which runs one engine per job over leased fleet workers) keeps
// the allocation-free steady state of the in-process TCP runtime. Pass
// Config.Buffers() of the run the fabric will drive.
func ServeMasterPool(ln net.Listener, alive int, timeout time.Duration, codecName string, pool *BufferPool, comm CommOptions, dim int) (Fabric, error) {
	return acceptWorkers(ln, alive, timeout, codecName, pool, comm, dim, 0)
}

// Fabric is the exported face of the master-side substrate, for callers
// (cmd/bcccluster) that manage their own listeners and then hand control to
// RunWithFabric.
type Fabric = fabric

// RunWithFabric drives the master engine over an already-connected fabric.
// The caller retains ownership of the fabric and must Close it.
func RunWithFabric(cfg *Config, fab Fabric, opts LiveOptions) (*Result, error) {
	return RunWithFabricContext(context.Background(), cfg, fab, opts)
}

// RunWithFabricContext is RunWithFabric bounded by a context: cancellation
// interrupts the master even while it blocks for replies and returns the
// completed iterations' partial Result alongside ctx.Err(). The caller
// still owns the fabric and must Close it to release worker connections.
func RunWithFabricContext(ctx context.Context, cfg *Config, fab Fabric, opts LiveOptions) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return runEngine(ctx, cfg, newLiveTransport(cfg, fab, opts))
}
