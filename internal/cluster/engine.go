package cluster

import (
	"context"
	"fmt"
	"math"

	"bcc/internal/coding"
	"bcc/internal/faults"
	"bcc/internal/model"
	"bcc/internal/trace"
	"bcc/internal/vecmath"
	"bcc/internal/wire"
)

// This file is the unified master engine. The per-iteration lifecycle that
// the paper's §III-C argument rests on — broadcast the query, consume worker
// arrivals, offer them to the decoder, finish the moment the gradient is
// decodable, advance the optimizer, record IterStats — is implemented once
// here and parameterized by a small Transport interface. The DES simulator
// (sim.go), the goroutine/channel fabric and the TCP fabric (live.go,
// tcp.go) are thin transports feeding this engine; new runtimes (async/SSP,
// multi-host, sharded masters) plug in the same way.
//
// The engine is the single point where the run lifecycle is controlled and
// observed: the caller's context cancels or deadline-bounds the run (the
// partial Result accumulated so far is returned alongside ctx.Err()),
// Config.Observer sees every decode point and finished iteration,
// Config.StopWhen ends the run early, and Config.Checkpoint persists state
// every Config.CheckpointEvery iterations.

// Transport is the master engine's view of a runtime substrate: something
// that can announce a query to the workers and hand back the resulting
// arrivals, one iteration at a time.
type Transport interface {
	// Broadcast announces iteration iter's query to every worker and
	// returns the ArrivalSource for that iteration's worker transmissions.
	// The query slice is owned by the transport after the call — except on
	// SyncQuery transports, which must consume it before returning so the
	// engine can reuse one query buffer across iterations. The context
	// bounds the iteration: a blocking ArrivalSource.Next must return with
	// an error no later than ctx's cancellation.
	Broadcast(ctx context.Context, iter int, query []float64) (ArrivalSource, error)
	// Shutdown tells the workers the run is over (best effort). The engine
	// calls it on every exit path, including cancellation and errors.
	Shutdown()
	// Traits describes the transport's timing semantics.
	Traits() Traits
}

// Traits describes a transport's clock and memory semantics to the engine.
type Traits struct {
	// Virtual is true when the transport runs on a modelled clock (the DES
	// simulator): arrivals after the decode point can be drained for free,
	// which is what makes per-iteration trace recording possible.
	Virtual bool
	// SyncQuery is true when Broadcast consumes the query synchronously and
	// retains no reference to it after returning; the engine then skips the
	// per-iteration defensive clone of the optimizer's query point. Live
	// transports hand the query to concurrent workers and must leave this
	// false.
	SyncQuery bool
}

// Arrival is one worker transmission as observed by the master.
type Arrival struct {
	// Worker is the sender's index.
	Worker int
	// Compute is the worker's (virtual) computation time this iteration,
	// used for the paper's computation-time metric.
	Compute float64
	// Units is the communication load of the transmission.
	Units float64
	// Msgs are the encoded messages to offer to the decoder.
	Msgs []coding.Message
	// Span carries the worker's modelled timeline on virtual transports
	// (nil on live transports); the engine fills Span.Counted.
	Span *trace.WorkerSpan
}

// ArrivalSource yields one iteration's arrivals in the order the master
// receives them.
type ArrivalSource interface {
	// Next blocks for the next arrival. ok=false means every alive worker
	// has been accounted for this iteration (arrived, died, or had its
	// transmission dropped); a non-nil error aborts the run (timeout,
	// broken connection, cancelled context).
	Next() (arr Arrival, ok bool, err error)
	// Wall returns the iteration's elapsed time as of the last arrival
	// returned by Next — virtual seconds on the simulator, scaled real
	// seconds on the live runtimes.
	Wall() float64
	// RoundEnd returns the time at which the iteration is fully over, tail
	// included: on virtual transports the instant the last arrival
	// finishes draining, on live transports the current elapsed time.
	RoundEnd() float64
	// Finish releases the source's resources (timers); the engine calls it
	// exactly once, after it stops consuming arrivals.
	Finish()
}

// RunTransport validates cfg and drives the full training run over an
// already-constructed transport. RunSim, RunLive and RunWithFabric all
// funnel into it; it is exported so future runtimes outside this file can
// reuse the engine unchanged.
func RunTransport(cfg *Config, tr Transport) (*Result, error) {
	return RunTransportContext(context.Background(), cfg, tr)
}

// RunTransportContext is RunTransport bounded by a context: cancellation or
// deadline expiry ends the run between arrivals and returns the iterations
// completed so far alongside ctx's error.
func RunTransportContext(ctx context.Context, cfg *Config, tr Transport) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return runEngine(ctx, cfg, tr)
}

// runEngine is THE master iteration loop. Every runtime's master behaviour
// — early finish on decodability, stall detection, stats bookkeeping, trace
// recording, optimizer advance, observer callbacks, early stopping,
// checkpointing, cancellation — lives here and only here.
//
// The loop owns the steady-state allocation budget of the data plane: one
// decoder reused across iterations (Reset between them), one decode buffer,
// one query clone buffer on live transports, and the run's BufferPool to
// which every consumed message payload is returned once its iteration has
// decoded. After the first iteration warms the pool and scratch, processing
// a worker message allocates nothing.
//
// On cancellation the engine returns the partial Result of the iterations
// already completed together with ctx.Err(); the in-flight iteration is
// discarded. Errors without a Result (stall, broken transport) return a nil
// Result and do not invoke Observer.OnRunEnd.
func runEngine(ctx context.Context, cfg *Config, tr Transport) (*Result, error) {
	defer tr.Shutdown()
	pool := cfg.buffers()
	iters := make([]IterStats, 0, cfg.Iterations)
	traits := tr.Traits()
	virtual := traits.Virtual
	dec := cfg.Plan.NewDecoder()
	coding.SetDecodeParallelism(dec, cfg.DecodeParallelism)
	grad := make([]float64, cfg.Model.Dim())
	cp := cfg.comm()
	// The sharded master data plane (sharded.go): coordinate-partitioned
	// decode + update on dedicated shard goroutines, nil when unsharded or
	// when the scheme/optimizer lacks the slice capabilities (serial
	// fallback; results are identical either way).
	var shards *masterShards
	if cfg.MasterShards > 1 {
		if shards = newMasterShards(cfg, dec, grad, tr); shards != nil {
			defer shards.stop()
		}
	}
	var qbuf []float64   // reusable quantized-query scratch (lossy codecs)
	var lossRows []int   // AllRows scratch for LossEvery evaluations
	var used [][]float64 // consumed payload buffers, recycled post-decode
	var totalElapsed float64
	// Measured comm accounting: transports with real sockets expose running
	// byte totals; the engine records per-iteration deltas. The baseline
	// snapshot here excludes the handshake frames read during accept, and
	// the deferred Shutdown excludes the shutdown frame from the last
	// iteration's delta.
	wc, _ := tr.(wireCounter)
	var prevIn, prevOut int64
	if wc != nil {
		prevIn, prevOut = wc.WireTotals()
	}
	// finish assembles the Result over the completed iterations — the full
	// run, an early-stopped prefix, or the partial progress of a cancelled
	// run — and is the single place OnRunEnd fires. On draining transports
	// it first waits for in-flight straggler frames so the measured wire
	// totals are complete and reproducible: the egress total is snapshotted
	// before the drain (the drain's own shutdown re-broadcast must not
	// count), the ingress total after it (the straggler tail must).
	finish := func() *Result {
		var drainIn, drainOut int64
		if wd, ok := tr.(wireDrainer); ok && wc != nil {
			_, outBefore := wc.WireTotals()
			wd.DrainWire()
			inAfter, _ := wc.WireTotals()
			drainIn, drainOut = inAfter-prevIn, outBefore-prevOut
		}
		res := summarize(vecmath.Clone(cfg.Opt.Iterate()), iters)
		res.TotalWireIn += int(drainIn)
		res.TotalWireOut += int(drainOut)
		res.TotalElapsed = totalElapsed
		if shards != nil {
			res.Shards = shards.snapshot()
		}
		if cfg.Observer != nil {
			cfg.Observer.OnRunEnd(res)
		}
		return res
	}
	// Fault-plan accounting: scheduled events are surfaced to the observer
	// at the top of each iteration, and iterations that the plan leaves
	// without enough reachable workers to possibly decode degrade
	// explicitly instead of wedging the transport.
	dead := cfg.deadSet()
	_, n, _ := cfg.Plan.Params()
	minResponders := coding.MinResponders(cfg.Plan)
	// Adaptive redundancy (controller.go): a Retunable plan plus a
	// configured Controller re-tunes the family's active level at the top
	// of each iteration, before the query goes out. Telemetry comes from
	// the deterministic fault plan only, so the decisions — and the run —
	// are identical on every runtime. Without a Retunable plan the
	// Controller is ignored (the documented fixed-level default).
	rp, _ := cfg.Plan.(coding.Retunable)
	ctl := cfg.Controller
	if rp == nil {
		ctl = nil
	}
	prevHeard := 0
	// degraded signals the observer that the run is about to end because
	// the gradient is unrecoverable; the one place both degrade paths
	// (fail-fast and stall) report through.
	degraded := func(iter int) {
		if cfg.Observer != nil {
			cfg.Observer.OnWorkerFault(faults.Event{Iter: iter, Kind: faults.KindDegraded, Worker: -1})
		}
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := ctx.Err(); err != nil {
			return finish(), err
		}
		if cfg.Faults != nil && cfg.Observer != nil {
			cfg.Faults.EventsAt(iter, cfg.Observer.OnWorkerFault)
		}
		reachable := reachableWorkers(cfg.Faults, dead, n, iter)
		if reachable < minResponders {
			degraded(iter)
			return finish(), fmt.Errorf(
				"cluster: iteration %d has %d reachable workers but scheme %q cannot decode below %d: %w",
				iter, reachable, cfg.Plan.Scheme(), minResponders, ErrBelowThreshold)
		}
		if ctl != nil {
			lvl := ctl.Retune(gatherTelemetry(cfg.Faults, dead, n, iter, reachable, prevHeard, rp))
			if lvl < rp.MinLevel() {
				lvl = rp.MinLevel()
			}
			if lvl > rp.MaxLevel() {
				lvl = rp.MaxLevel()
			}
			// MinResponders-safe floor: never activate a level whose
			// threshold exceeds the reachable fleet — fall back toward max
			// redundancy instead of stalling when the fleet thins. The
			// fail-fast above guarantees the floor fits the family.
			if floor := n - reachable + 1; lvl < floor {
				lvl = floor
				if max := rp.MaxLevel(); lvl > max {
					lvl = max
				}
			}
			if lvl != rp.Level() {
				if err := rp.SetLevel(lvl); err != nil {
					return nil, fmt.Errorf("cluster: controller picked level %d at iteration %d: %w", lvl, iter, err)
				}
			}
		}
		q := cfg.Opt.Query()
		switch {
		case cp.lossyQuery() && traits.SyncQuery:
			// Quantize into engine-owned scratch — never the optimizer's
			// iterate in place — so every runtime broadcasts the identical
			// f32-rounded query while the master keeps full precision.
			if len(qbuf) != len(q) {
				qbuf = make([]float64, len(q))
			}
			copy(qbuf, q)
			wire.QuantizeF32(qbuf)
			q = qbuf
		case cp.lossyQuery():
			q = vecmath.Clone(q)
			wire.QuantizeF32(q)
		case !traits.SyncQuery:
			// Concurrent workers hold the broadcast query across iteration
			// boundaries, so they get their own copy.
			q = vecmath.Clone(q)
		}
		src, err := tr.Broadcast(ctx, iter, q)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return finish(), ctxErr
			}
			return nil, fmt.Errorf("cluster: broadcast failed at iteration %d: %w", iter, err)
		}
		dec.Reset()
		used = used[:0]
		st := IterStats{Iter: iter, Loss: math.NaN()}
		if rp != nil {
			st.Level = rp.Level()
		}
		// On a virtual clock, draining the post-decode tail is free, so the
		// trace can show the uncounted stragglers too.
		tracing := virtual && cfg.Trace != nil
		var spans []trace.WorkerSpan
		decoded := false
		for !decoded || tracing {
			arr, ok, err := src.Next()
			if err != nil {
				src.Finish()
				if ctxErr := ctx.Err(); ctxErr != nil {
					return finish(), ctxErr
				}
				return nil, err
			}
			if !ok {
				if !decoded {
					src.Finish()
					degraded(iter)
					return nil, fmt.Errorf("%w (iteration %d)", ErrStalled, iter)
				}
				break
			}
			counted := !decoded
			if counted {
				if arr.Compute > st.Compute {
					st.Compute = arr.Compute
				}
				for _, msg := range arr.Msgs {
					st.Bytes += cp.msgBytes(msg)
					dec.Offer(msg)
				}
				if dec.Decodable() {
					st.Wall = src.Wall()
					decoded = true
					if cfg.Observer != nil {
						cfg.Observer.OnDecode(DecodeEvent{
							Iter:         iter,
							Wall:         st.Wall,
							WorkersHeard: dec.WorkersHeard(),
							Units:        dec.UnitsReceived(),
						})
					}
				}
			}
			// Every consumed payload goes back to the pool after this
			// iteration's decode; the decoder may hold references until then.
			for _, msg := range arr.Msgs {
				if msg.Vec != nil {
					used = append(used, msg.Vec)
				}
				if msg.Imag != nil {
					used = append(used, msg.Imag)
				}
			}
			if arr.Span != nil {
				span := *arr.Span
				span.Counted = counted
				spans = append(spans, span)
			}
		}
		if cfg.Pipelined {
			// The next broadcast goes out the moment this iteration
			// decodes; straggler work in flight is cancelled.
			totalElapsed += st.Wall
		} else {
			totalElapsed += src.RoundEnd()
		}
		src.Finish()
		if tracing {
			cfg.Trace.Add(trace.Iteration{Iter: iter, DecodeTime: st.Wall, Spans: spans})
		}
		st.Comm = st.Wall - st.Compute
		if wc != nil {
			in, out := wc.WireTotals()
			st.WireBytesIn = int(in - prevIn)
			st.WireBytesOut = int(out - prevOut)
			prevIn, prevOut = in, out
		}
		var finishErr error
		if shards != nil {
			finishErr = shards.finishIteration(&st)
		} else {
			finishErr = finishIteration(cfg, dec, grad, &st)
		}
		if finishErr != nil {
			return nil, finishErr
		}
		for i, b := range used {
			pool.Put(b)
			used[i] = nil
		}
		used = used[:0]
		if cfg.LossEvery > 0 && iter%cfg.LossEvery == 0 {
			if lossRows == nil {
				lossRows = model.AllRows(cfg.Model.NumExamples())
			}
			st.Loss = cfg.Model.SubsetLoss(cfg.Opt.Iterate(), lossRows) / float64(cfg.Model.NumExamples())
		}
		prevHeard = st.WorkersHeard
		iters = append(iters, st)
		if cfg.Observer != nil {
			cfg.Observer.OnIteration(st)
		}
		completed := iter + 1
		if cfg.CheckpointEvery > 0 && cfg.Checkpoint != nil && completed%cfg.CheckpointEvery == 0 {
			if err := cfg.Checkpoint(completed); err != nil {
				return finish(), fmt.Errorf("cluster: checkpoint after %d iterations: %w", completed, err)
			}
		}
		if cfg.StopWhen != nil && cfg.StopWhen(st) {
			break
		}
	}
	return finish(), nil
}

// reachableWorkers counts the workers that can possibly contribute to
// iteration iter's decode: not configured dead, not crashed, and not
// scheduled to have their transmission lost (partition window or drop
// burst). Random DropProb losses are NOT included — they are drawn at the
// transports, and the stall path reports them after the fact.
func reachableWorkers(plan *faults.Plan, dead map[int]bool, n, iter int) int {
	reachable := n - len(dead)
	if plan == nil {
		return reachable
	}
	reachable = 0
	for w := 0; w < n; w++ {
		if !dead[w] && plan.Contributing(w, iter) {
			reachable++
		}
	}
	return reachable
}

// drawDrops draws one iteration's lost transmissions: one Bernoulli draw per
// alive worker in index order. Every transport consumes the dropper stream
// through this helper, so for a given DropSeed the fault pattern is
// identical across the sim, live and tcp runtimes.
func drawDrops(d *dropper, dead map[int]bool, n int) map[int]bool {
	if d == nil {
		return nil
	}
	lost := make(map[int]bool)
	for w := 0; w < n; w++ {
		if dead[w] {
			continue
		}
		if d.drop() {
			lost[w] = true
		}
	}
	return lost
}
