package cluster

import (
	"fmt"
	"math"
	"time"

	"bcc/internal/coding"
	"bcc/internal/vecmath"
)

// ModelUpdate is the master-to-worker broadcast for one iteration. Iter < 0
// signals shutdown.
type ModelUpdate struct {
	Iter  int
	Query []float64
}

// Reply is a worker-to-master transmission: the encoded messages of one
// iteration plus the worker's drawn (virtual) compute time, which the master
// uses for the paper's computation-time metric.
type Reply struct {
	Iter    int
	Worker  int
	Compute float64
	Msgs    []coding.Message
}

// LiveOptions tunes the goroutine/TCP runtimes.
type LiveOptions struct {
	// TimeScale converts virtual latency seconds into real sleep seconds
	// (default 1e-3: a 10 s virtual iteration sleeps 10 ms).
	TimeScale float64
	// Timeout aborts an iteration whose decoder starves (default 30 s).
	Timeout time.Duration
	// TCP routes all traffic through real loopback TCP sockets (gob-encoded)
	// instead of in-process channels.
	TCP bool
	// Codec selects the TCP frame encoding: "gob" (default) or "wire" (the
	// compact binary codec of internal/wire). Ignored without TCP.
	Codec string
}

func (o *LiveOptions) defaults() {
	if o.TimeScale <= 0 {
		o.TimeScale = 1e-3
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
}

// fabric is the master's view of the communication substrate.
type fabric interface {
	Broadcast(mu ModelUpdate) error
	Replies() <-chan Reply
	// AliveWorkers returns how many workers will reply each iteration.
	AliveWorkers() int
	Close() error
}

// RunLive executes the training run with real concurrent workers — one
// goroutine per worker — exchanging messages over channels or loopback TCP.
// Latency draws are injected as scaled sleeps, so the realized arrival order
// matches the latency model while the gradients are computed for real.
func RunLive(cfg *Config, opts LiveOptions) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	opts.defaults()
	var fab fabric
	var err error
	if opts.TCP {
		fab, err = newTCPFabric(cfg, opts)
	} else {
		fab, err = newChanFabric(cfg, opts)
	}
	if err != nil {
		return nil, err
	}
	defer fab.Close()
	return runMaster(cfg, fab, opts)
}

// runMaster drives the iteration loop against any fabric.
func runMaster(cfg *Config, fab fabric, opts LiveOptions) (*Result, error) {
	iters := make([]IterStats, 0, cfg.Iterations)
	alive := fab.AliveWorkers()
	drops := cfg.newDropper()
	for iter := 0; iter < cfg.Iterations; iter++ {
		q := cfg.Opt.Query()
		if err := fab.Broadcast(ModelUpdate{Iter: iter, Query: vecmath.Clone(q)}); err != nil {
			return nil, fmt.Errorf("cluster: broadcast failed at iteration %d: %w", iter, err)
		}
		start := time.Now()
		dec := cfg.Plan.NewDecoder()
		st := IterStats{Iter: iter, Loss: math.NaN()}
		replies := 0
		deadline := time.NewTimer(opts.Timeout)
		for !dec.Decodable() {
			select {
			case rep := <-fab.Replies():
				if rep.Iter != iter {
					continue // stale reply from a straggler's previous round
				}
				replies++
				if drops.drop() {
					// Transmission lost; the reply still counts toward the
					// stall check (the worker will not retransmit).
					if !dec.Decodable() && replies >= alive {
						deadline.Stop()
						return nil, fmt.Errorf("%w (iteration %d)", ErrStalled, iter)
					}
					continue
				}
				if rep.Compute > st.Compute {
					st.Compute = rep.Compute
				}
				if cfg.IngressPerUnit > 0 {
					var units float64
					for _, msg := range rep.Msgs {
						units += msg.Units
					}
					// The master's NIC drains this message before the next
					// can be taken — same bottleneck the sim models.
					sleepVirtual(cfg.IngressPerUnit*units, opts.TimeScale)
				}
				for _, msg := range rep.Msgs {
					st.Bytes += messageBytes(msg)
					dec.Offer(msg)
				}
				if !dec.Decodable() && replies >= alive {
					deadline.Stop()
					return nil, fmt.Errorf("%w (iteration %d)", ErrStalled, iter)
				}
			case <-deadline.C:
				return nil, fmt.Errorf("cluster: iteration %d timed out after %v (%d/%d replies)",
					iter, opts.Timeout, replies, alive)
			}
		}
		deadline.Stop()
		st.Wall = time.Since(start).Seconds() / opts.TimeScale
		st.Comm = st.Wall - st.Compute
		if err := finishIteration(cfg, dec, &st); err != nil {
			return nil, err
		}
		if cfg.LossEvery > 0 && iter%cfg.LossEvery == 0 {
			st.Loss = fullLoss(cfg)
		}
		iters = append(iters, st)
	}
	_ = fab.Broadcast(ModelUpdate{Iter: -1})
	finalW := vecmath.Clone(cfg.Opt.Iterate())
	return summarize(finalW, iters), nil
}

// ---------------------------------------------------------------------------
// Worker node logic (shared by the channel and TCP runtimes, and by the
// out-of-process worker in cmd/bcccluster)
// ---------------------------------------------------------------------------

// WorkerEnv is everything one worker node needs to participate in a run.
type WorkerEnv struct {
	Index int
	Plan  coding.Plan
	Model interface {
		Dim() int
		SubsetGradient(w []float64, rows []int, out []float64)
	}
	Units     [][]int
	Latency   Latency
	TimeScale float64
	// Codec selects the TCP frame encoding ("" = gob); must match the
	// master. Unused by the channel fabric.
	Codec string
	// ComputeParallelism fans the per-example gradient computations out
	// over this many goroutines (0/1 = serial).
	ComputeParallelism int
}

// RunWorker executes the worker protocol until a shutdown update (Iter < 0)
// or recv failure: receive the freshest model, sleep the drawn broadcast +
// compute latency, compute the real partial gradients, encode, sleep the
// upload latency, reply. recv should block for the next update and report
// ok=false on channel/connection close; drain, if non-nil, performs a
// non-blocking fetch so a lagging worker can skip stale models.
func RunWorker(env WorkerEnv, recv func() (ModelUpdate, bool), drain func() (ModelUpdate, bool), send func(Reply) error) error {
	assign := env.Plan.Assignments()[env.Index]
	points := 0
	for _, u := range assign {
		points += len(env.Units[u])
	}
	scale := env.TimeScale
	if scale <= 0 {
		scale = 1e-3
	}
	for {
		mu, ok := recv()
		if !ok || mu.Iter < 0 {
			return nil
		}
		// Skip to the most recent pending update (we lagged behind).
		if drain != nil {
			for {
				next, got := drain()
				if !got {
					break
				}
				if next.Iter < 0 {
					return nil
				}
				mu = next
			}
		}
		iter := mu.Iter
		sleepVirtual(env.Latency.Broadcast(env.Index, iter), scale)
		comp := env.Latency.Compute(env.Index, iter, points)
		parts := gradientParts(env.Model, env.Units, assign, mu.Query, env.ComputeParallelism)
		sleepVirtual(comp, scale)
		msgs := env.Plan.Encode(env.Index, parts)
		var units float64
		for _, m := range msgs {
			units += m.Units
		}
		sleepVirtual(env.Latency.Upload(env.Index, iter, units), scale)
		if err := send(Reply{Iter: iter, Worker: env.Index, Compute: comp, Msgs: msgs}); err != nil {
			return err
		}
	}
}

func sleepVirtual(virtualSeconds, scale float64) {
	if virtualSeconds <= 0 {
		return
	}
	time.Sleep(time.Duration(virtualSeconds * scale * float64(time.Second)))
}

// ---------------------------------------------------------------------------
// In-process channel fabric
// ---------------------------------------------------------------------------

type chanFabric struct {
	inboxes []chan ModelUpdate
	replies chan Reply
	alive   int
}

func newChanFabric(cfg *Config, opts LiveOptions) (fabric, error) {
	_, n, _ := cfg.Plan.Params()
	dead := cfg.deadSet()
	f := &chanFabric{
		inboxes: make([]chan ModelUpdate, n),
		replies: make(chan Reply, n*4),
		alive:   n - len(dead),
	}
	for w := 0; w < n; w++ {
		if dead[w] {
			continue
		}
		// Deep enough that the master never blocks on a straggler's inbox.
		inbox := make(chan ModelUpdate, cfg.Iterations+2)
		f.inboxes[w] = inbox
		env := WorkerEnv{
			Index:              w,
			Plan:               cfg.Plan,
			Model:              cfg.Model,
			Units:              cfg.Units,
			Latency:            cfg.latency(),
			TimeScale:          opts.TimeScale,
			ComputeParallelism: cfg.ComputeParallelism,
		}
		go func() {
			recv := func() (ModelUpdate, bool) {
				mu, ok := <-inbox
				return mu, ok
			}
			drain := func() (ModelUpdate, bool) {
				select {
				case mu, ok := <-inbox:
					return mu, ok
				default:
					return ModelUpdate{}, false
				}
			}
			send := func(r Reply) error {
				f.replies <- r
				return nil
			}
			_ = RunWorker(env, recv, drain, send)
		}()
	}
	return f, nil
}

func (f *chanFabric) Broadcast(mu ModelUpdate) error {
	for _, inbox := range f.inboxes {
		if inbox == nil {
			continue
		}
		inbox <- mu
	}
	return nil
}

func (f *chanFabric) Replies() <-chan Reply { return f.replies }
func (f *chanFabric) AliveWorkers() int     { return f.alive }

func (f *chanFabric) Close() error {
	for _, inbox := range f.inboxes {
		if inbox != nil {
			close(inbox)
		}
	}
	return nil
}
