package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bcc/internal/coding"
	"bcc/internal/faults"
)

// The live runtimes execute the run with real concurrent workers — one
// goroutine per worker — exchanging messages over in-process channels or
// loopback TCP sockets. Latency draws are injected as scaled sleeps, so the
// realized arrival order matches the latency model while the gradients are
// computed for real. Both fabrics are adapted to the master engine
// (engine.go) by the single liveTransport below; the master iteration logic
// itself lives in the engine, not here.

// ModelUpdate is the master-to-worker broadcast for one iteration. Iter < 0
// signals shutdown.
type ModelUpdate struct {
	Iter  int
	Query []float64
	// Level is the active redundancy level of a Retunable plan for this
	// iteration (controller.go): the worker encodes with that level's plan
	// and processes only the matching prefix of its assignment. 0 on fixed
	// plans (and treated as "use the plan's max level" defensively).
	Level int
}

// Reply is a worker-to-master transmission: the encoded messages of one
// iteration plus the worker's drawn (virtual) compute time, which the master
// uses for the paper's computation-time metric.
type Reply struct {
	Iter    int
	Worker  int
	Compute float64
	Msgs    []coding.Message
}

// LiveOptions tunes the goroutine/TCP runtimes.
type LiveOptions struct {
	// TimeScale converts virtual latency seconds into real sleep seconds
	// (default 1e-3: a 10 s virtual iteration sleeps 10 ms).
	TimeScale float64
	// Timeout aborts an iteration whose decoder starves (default 30 s).
	Timeout time.Duration
	// TCP routes all traffic through real loopback TCP sockets (gob-encoded)
	// instead of in-process channels.
	TCP bool
	// Codec selects the TCP frame encoding: "gob" (default) or "wire" (the
	// compact binary codec of internal/wire). Ignored without TCP.
	Codec string
	// Drain makes the run end only after the fabric has drained: every
	// in-flight straggler reply frame is read off the sockets (and counted)
	// before the Result is assembled, so Result.TotalWireIn/Out are
	// reproducible run to run instead of racing the teardown. Costs waiting
	// for the last straggler's bounded sleep; measurement harnesses
	// (bccbench, the service) turn it on, interactive runs need not.
	Drain bool
}

func (o *LiveOptions) defaults() {
	if o.TimeScale <= 0 {
		o.TimeScale = 1e-3
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
}

// fabric is the communication substrate under the live transport: the pipes
// to the workers, nothing more. The master-side iteration semantics live in
// the engine; the timing/fault bookkeeping lives in liveTransport.
type fabric interface {
	Broadcast(mu ModelUpdate) error
	Replies() <-chan Reply
	// AliveWorkers returns how many workers will reply each iteration.
	AliveWorkers() int
	Close() error
}

// RunLive executes the training run with real concurrent workers over
// channels (default) or loopback TCP (opts.TCP).
func RunLive(cfg *Config, opts LiveOptions) (*Result, error) {
	return RunLiveContext(context.Background(), cfg, opts)
}

// RunLiveContext is RunLive bounded by a context: cancellation interrupts
// the master even mid-iteration (while it blocks for worker replies) and
// returns the completed iterations' partial Result alongside ctx.Err().
// Worker goroutines and TCP listeners are torn down on every exit path; a
// worker mid-sleep finishes its bounded (scaled) latency sleep and then
// exits on the closed fabric.
func RunLiveContext(ctx context.Context, cfg *Config, opts LiveOptions) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	opts.defaults()
	var fab fabric
	var err error
	if opts.TCP {
		fab, err = newTCPFabric(cfg, opts)
	} else {
		fab, err = newChanFabric(cfg, opts)
	}
	if err != nil {
		return nil, err
	}
	defer fab.Close()
	return runEngine(ctx, cfg, newLiveTransport(cfg, fab, opts))
}

// ---------------------------------------------------------------------------
// Live transport: adapts any fabric to the master engine
// ---------------------------------------------------------------------------

type liveTransport struct {
	cfg    *Config
	pool   *BufferPool
	fab    fabric
	opts   LiveOptions
	dead   map[int]bool
	drops  *dropper
	faults *faults.Plan
	n      int
	frac   float64          // payload byte width relative to raw64
	rp     coding.Retunable // non-nil on Retunable plans: broadcasts carry the level
}

func newLiveTransport(cfg *Config, fab fabric, opts LiveOptions) *liveTransport {
	opts.defaults()
	_, n, _ := cfg.Plan.Params()
	rp, _ := cfg.Plan.(coding.Retunable)
	return &liveTransport{
		rp:     rp,
		cfg:    cfg,
		pool:   cfg.buffers(),
		fab:    fab,
		opts:   opts,
		dead:   cfg.deadSet(),
		drops:  cfg.newDropper(),
		faults: cfg.Faults,
		n:      n,
		frac:   cfg.comm().frac,
	}
}

// WireTotals implements wireCounter by delegating to the fabric when its
// bytes genuinely cross sockets (the tcp fabric); the channel fabric has no
// wire, so the engine records zeros.
func (t *liveTransport) WireTotals() (in, out int64) {
	if wc, ok := t.fab.(wireCounter); ok {
		return wc.WireTotals()
	}
	return 0, 0
}

// ShardWireIn implements shardWireCounter by delegating to the fabric when
// it has per-shard listeners (the scatter fabric); other fabrics have no
// per-shard wire, so the sharded master falls back to modelled accounting.
func (t *liveTransport) ShardWireIn() []int64 {
	if swc, ok := t.fab.(shardWireCounter); ok {
		return swc.ShardWireIn()
	}
	return nil
}

// wireDrainer is the optional transport capability the engine uses to settle
// measured wire totals before assembling a Result: block until every
// in-flight reply frame has been read off the sockets (bounded by the
// fabric's drain timeout), so straggler bytes land in the totals instead of
// racing the teardown.
type wireDrainer interface {
	DrainWire()
}

// DrainWire implements wireDrainer by draining the underlying fabric when
// LiveOptions.Drain asked for settled totals; a no-op otherwise and on
// fabrics without sockets (DrainFabric handles both).
func (t *liveTransport) DrainWire() {
	if t.opts.Drain {
		DrainFabric(t.fab, t.opts.Timeout)
	}
}

// expectedReplies counts the workers that will transmit for iteration iter:
// the fabric's alive workers minus those the fault plan has crashed.
// Partitioned and burst-dropped workers still transmit (the loss is on the
// master's side), so they stay in the count and their arrivals are
// discarded in Next.
func (t *liveTransport) expectedReplies(iter int) int {
	if t.faults == nil {
		return t.fab.AliveWorkers()
	}
	expected := 0
	for w := 0; w < t.n; w++ {
		if !t.dead[w] && t.faults.Active(w, iter) {
			expected++
		}
	}
	return expected
}

func (t *liveTransport) Traits() Traits { return Traits{} }

func (t *liveTransport) Shutdown() { _ = t.fab.Broadcast(ModelUpdate{Iter: -1}) }

func (t *liveTransport) Broadcast(ctx context.Context, iter int, query []float64) (ArrivalSource, error) {
	lost := drawDrops(t.drops, t.dead, t.n)
	mu := ModelUpdate{Iter: iter, Query: query}
	if t.rp != nil {
		// Read on the engine goroutine, after the controller's SetLevel and
		// before any worker can observe the broadcast: the level the master
		// will decode this iteration at.
		mu.Level = t.rp.Level()
	}
	if err := t.fab.Broadcast(mu); err != nil {
		return nil, err
	}
	return &liveSource{
		t:        t,
		ctx:      ctx,
		iter:     iter,
		lost:     lost,
		expected: t.expectedReplies(iter),
		start:    time.Now(),
		deadline: time.NewTimer(t.opts.Timeout),
	}, nil
}

type liveSource struct {
	t        *liveTransport
	ctx      context.Context
	iter     int
	lost     map[int]bool
	expected int
	start    time.Time
	deadline *time.Timer
	replies  int
}

func (s *liveSource) Next() (Arrival, bool, error) {
	for {
		if s.replies >= s.expected {
			// Every transmitting worker has reported (some possibly dropped).
			return Arrival{}, false, nil
		}
		select {
		case rep := <-s.t.fab.Replies():
			if rep.Iter != s.iter {
				// Stale reply from a straggler's previous round; its payload
				// buffers will never reach the decoder, so recycle them here.
				recycleMsgs(s.t.pool, rep.Msgs)
				continue
			}
			s.replies++
			if s.lost[rep.Worker] || s.t.faults.MasterDrop(rep.Worker, s.iter) {
				// Transmission lost in the network (random drop, partition
				// window or drop burst); the worker will not retransmit, but
				// its reply still counts toward the stall check above. The
				// lost payload is recycled like the wire would discard it.
				recycleMsgs(s.t.pool, rep.Msgs)
				continue
			}
			var units float64
			for _, msg := range rep.Msgs {
				units += msg.Units
			}
			if s.t.cfg.IngressPerUnit > 0 {
				// The master's NIC drains this message before the next can
				// be taken — same bottleneck the sim transport models, with
				// the drain scaled by the codec's byte fraction like the
				// transmitted bytes are.
				sleepVirtual(s.t.cfg.IngressPerUnit*units*s.t.frac, s.t.opts.TimeScale)
			}
			return Arrival{Worker: rep.Worker, Compute: rep.Compute, Units: units, Msgs: rep.Msgs}, true, nil
		case <-s.ctx.Done():
			return Arrival{}, false, s.ctx.Err()
		case <-s.deadline.C:
			return Arrival{}, false, fmt.Errorf("cluster: iteration %d timed out after %v (%d/%d replies)",
				s.iter, s.t.opts.Timeout, s.replies, s.expected)
		}
	}
}

func (s *liveSource) elapsed() float64 {
	return time.Since(s.start).Seconds() / s.t.opts.TimeScale
}

func (s *liveSource) Wall() float64     { return s.elapsed() }
func (s *liveSource) RoundEnd() float64 { return s.elapsed() }
func (s *liveSource) Finish()           { s.deadline.Stop() }

// ---------------------------------------------------------------------------
// Worker node logic (shared by the channel and TCP runtimes, and by the
// out-of-process worker in cmd/bcccluster)
// ---------------------------------------------------------------------------

// WorkerEnv is everything one worker node needs to participate in a run.
type WorkerEnv struct {
	Index int
	Plan  coding.Plan
	Model interface {
		Dim() int
		SubsetGradient(w []float64, rows []int, out []float64)
	}
	Units     [][]int
	Latency   Latency
	TimeScale float64
	// Faults, if non-nil, is the run's deterministic fault plan; must match
	// the master's Config.Faults. The worker consults it before every
	// iteration's work: while crashed it computes and transmits nothing, and
	// scheduled slowdown windows multiply its compute and upload latency.
	Faults *faults.Plan
	// Codec selects the TCP frame encoding ("" = gob); must match the
	// master. Unused by the channel fabric.
	Codec string
	// Comm configures the payload codec; must match the master's
	// Config.Comm (the TCP handshake verifies this).
	Comm CommOptions
	// ComputeParallelism fans the per-example gradient computations out
	// over this many goroutines (0/1 = serial).
	ComputeParallelism int
	// Pipelined makes the worker cancel stale in-flight work the moment a
	// fresher model update arrives, instead of finishing the old iteration
	// first; must match the master's Config.Pipelined.
	Pipelined bool
	// Bufs, if non-nil, supplies the worker's message payload buffers. The
	// in-process fabrics share the run's master pool (the master recycles a
	// payload once the iteration that consumed it has decoded); the
	// out-of-process TCP worker uses a private pool whose buffers are
	// recycled by its send function right after serialization.
	Bufs *BufferPool
	// ShardAddrs, when the master is sharded with the scatter data plane,
	// lists the per-shard listener addresses in shard order: the TCP worker
	// dials every one in addition to the primary and writes each reply's
	// coordinate slices to the owning shards (scatter.go). Empty = unsharded.
	// Must agree with the master's Config.MasterShards (the handshake
	// verifies the count).
	ShardAddrs []string
}

// RunWorker executes the worker protocol until a shutdown update (Iter < 0)
// or the updates channel closes: take the next pending model, sleep the
// drawn broadcast + compute latency, compute the real partial gradients,
// encode, sleep the upload latency, reply. In pipelined mode the latency
// sleeps are preemptible — a fresher update aborts the stale iteration
// immediately, and queued stale models are skipped. In barrier mode the
// worker serializes iterations and replies to EVERY query in order, even
// when it has fallen behind the master's broadcasts — the master discards
// the stale replies, exactly as the simulator models every alive worker
// computing every iteration, and the run's reply traffic stays identical
// run to run (bccbench's comm sweep asserts this reproducibility). An
// env.Faults plan is consulted before any iteration work: crashed
// iterations are skipped entirely (no latency draws, no compute, no
// transmission — exactly what the simulator models) and slowdown windows
// stretch the latency sleeps.
func RunWorker(env WorkerEnv, updates <-chan ModelUpdate, send func(Reply) error) error {
	env.Latency = withFaultSlowdowns(env.Latency, env.Faults)
	cp, err := env.Comm.resolve(env.Model.Dim())
	if err != nil {
		return err
	}
	fullAssign := env.Plan.Assignments()[env.Index]
	points := 0
	for _, u := range fullAssign {
		points += len(env.Units[u])
	}
	// Retunable plans (the nested family): the worker pins each iteration's
	// level from the broadcast itself, via immutable per-level plan views —
	// never via the shared plan's mutable active level, which the master's
	// controller may have advanced already (the channel fabric shares the
	// plan object; pipelined workers may lag a broadcast behind).
	rp, _ := env.Plan.(coding.Retunable)
	var levelPlans []coding.Plan
	var levelPoints []int
	if rp != nil {
		levelPlans = make([]coding.Plan, rp.MaxLevel())
		for L := rp.MinLevel(); L <= rp.MaxLevel(); L++ {
			lp, err := rp.AtLevel(L)
			if err != nil {
				return err
			}
			levelPlans[L-1] = lp
		}
		levelPoints = prefixPoints(env.Plan.Assignments(), env.Units)[env.Index]
	}
	scale := env.TimeScale
	if scale <= 0 {
		scale = 1e-3
	}
	// Per-worker partial-gradient scratch, reused across iterations; message
	// payloads are drawn from env.Bufs and owned by the receiver once sent.
	var parts [][]float64
	var mu ModelUpdate
	havePending := false
	for {
		if !havePending {
			var ok bool
			mu, ok = <-updates
			if !ok {
				return nil
			}
		}
		havePending = false
		// Pipelined: skip to the most recent pending update — stale work
		// would be preempted anyway. Barrier runs process every query in
		// order and reply to each, exactly what the simulator models, so the
		// reply stream (and its measured byte total) is identical run to run.
		if env.Pipelined {
		drain:
			for {
				select {
				case next, ok := <-updates:
					if !ok {
						return nil
					}
					mu = next
				default:
					break drain
				}
			}
		}
		if mu.Iter < 0 {
			return nil
		}
		if !env.Faults.Active(env.Index, mu.Iter) {
			continue // crashed for this iteration: no work, no reply
		}
		iter := mu.Iter
		// Resolve this iteration's level view: the broadcast's level on
		// Retunable plans (0 or out-of-range defensively means max level,
		// matching the family's fixed default), the plan itself otherwise.
		encPlan, assign, pts := env.Plan, fullAssign, points
		if rp != nil {
			L := mu.Level
			if L < rp.MinLevel() || L > rp.MaxLevel() {
				L = rp.MaxLevel()
			}
			encPlan, assign, pts = levelPlans[L-1], fullAssign[:L], levelPoints[L]
		}
		if next, preempted := sleepOrPreempt(env.Latency.Broadcast(env.Index, iter), scale, updates, env.Pipelined); preempted {
			mu, havePending = next, true
			continue
		}
		comp := env.Latency.Compute(env.Index, iter, pts)
		parts = gradientPartsInto(env.Model, env.Units, assign, mu.Query, env.ComputeParallelism, parts)
		if next, preempted := sleepOrPreempt(comp, scale, updates, env.Pipelined); preempted {
			mu, havePending = next, true
			continue
		}
		// The Msgs slice itself travels inside the Reply (the channel fabric
		// hands it to the master by reference), so it cannot be reused here;
		// only the payload buffers are pooled.
		msgs := encPlan.EncodeInto(nil, env.Index, parts, env.Bufs)
		var units float64
		for _, m := range msgs {
			units += m.Units
		}
		if next, preempted := sleepOrPreempt(env.Latency.Upload(env.Index, iter, units*cp.frac), scale, updates, env.Pipelined); preempted {
			// The encoded payloads never leave this worker: recycle them, or
			// every preempted straggler would drain the pool.
			recycleMsgs(env.Bufs, msgs)
			mu, havePending = next, true
			continue
		}
		if err := send(Reply{Iter: iter, Worker: env.Index, Compute: comp, Msgs: msgs}); err != nil {
			return err
		}
	}
}

// sleepOrPreempt sleeps the scaled virtual duration. When preemptible, a
// model update arriving mid-sleep cuts it short and is handed back to the
// caller; a closed channel is reported as a shutdown update.
func sleepOrPreempt(virtualSeconds, scale float64, updates <-chan ModelUpdate, preemptible bool) (ModelUpdate, bool) {
	if virtualSeconds <= 0 {
		return ModelUpdate{}, false
	}
	d := time.Duration(virtualSeconds * scale * float64(time.Second))
	if !preemptible {
		time.Sleep(d)
		return ModelUpdate{}, false
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case mu, ok := <-updates:
		if !ok {
			return ModelUpdate{Iter: -1}, true
		}
		return mu, true
	case <-timer.C:
		return ModelUpdate{}, false
	}
}

func sleepVirtual(virtualSeconds, scale float64) {
	if virtualSeconds <= 0 {
		return
	}
	time.Sleep(time.Duration(virtualSeconds * scale * float64(time.Second)))
}

// recycleMsgs returns the payload buffers of messages that will never reach
// the decoder (dropped or stale transmissions) to the pool.
func recycleMsgs(pool *BufferPool, msgs []coding.Message) {
	for _, msg := range msgs {
		pool.Put(msg.Vec)
		pool.Put(msg.Imag)
	}
}

// ---------------------------------------------------------------------------
// In-process channel fabric
// ---------------------------------------------------------------------------

type chanFabric struct {
	inboxes []chan ModelUpdate
	replies chan Reply
	// done, closed by Close, unblocks workers still pushing backlog replies
	// after the master stopped reading (barrier workers reply to every
	// queued query, so a straggler can finish its backlog post-run).
	done  chan struct{}
	once  sync.Once
	alive int
}

func newChanFabric(cfg *Config, opts LiveOptions) (fabric, error) {
	_, n, _ := cfg.Plan.Params()
	dead := cfg.deadSet()
	pool := cfg.buffers() // created before any worker goroutine starts
	f := &chanFabric{
		inboxes: make([]chan ModelUpdate, n),
		replies: make(chan Reply, n*4),
		done:    make(chan struct{}),
		alive:   n - len(dead),
	}
	for w := 0; w < n; w++ {
		if dead[w] {
			continue
		}
		// Deep enough that the master never blocks on a straggler's inbox.
		inbox := make(chan ModelUpdate, cfg.Iterations+2)
		f.inboxes[w] = inbox
		env := WorkerEnv{
			Index:              w,
			Plan:               cfg.Plan,
			Model:              cfg.Model,
			Units:              cfg.Units,
			Latency:            cfg.latency(),
			TimeScale:          opts.TimeScale,
			Faults:             cfg.Faults,
			Comm:               cfg.Comm,
			ComputeParallelism: cfg.ComputeParallelism,
			Pipelined:          cfg.Pipelined,
			Bufs:               pool,
		}
		go func() {
			// The channel fabric's "wire boundary": the reply handoff. The
			// lossy transform is applied here, once per payload, exactly where
			// a TCP worker's serializer would apply it. Coders hold selection
			// scratch, so each worker goroutine gets its own.
			coder := cfg.comm().newCoder()
			send := func(r Reply) error {
				applyReplyCodec(coder, r.Msgs)
				select {
				case f.replies <- r:
				case <-f.done:
					// Fabric closed: nobody will read this reply. Recycle its
					// payloads like a dropped transmission; the worker exits
					// on its closed inbox.
					recycleMsgs(pool, r.Msgs)
				}
				return nil
			}
			_ = RunWorker(env, inbox, send)
		}()
	}
	return f, nil
}

func (f *chanFabric) Broadcast(mu ModelUpdate) error {
	for _, inbox := range f.inboxes {
		if inbox == nil {
			continue
		}
		inbox <- mu
	}
	return nil
}

func (f *chanFabric) Replies() <-chan Reply { return f.replies }
func (f *chanFabric) AliveWorkers() int     { return f.alive }

func (f *chanFabric) Close() error {
	f.once.Do(func() {
		close(f.done)
		for _, inbox := range f.inboxes {
			if inbox != nil {
				close(inbox)
			}
		}
	})
	return nil
}
