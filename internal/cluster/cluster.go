package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"bcc/internal/coding"
	"bcc/internal/faults"
	"bcc/internal/model"
	"bcc/internal/optimize"
	"bcc/internal/rngutil"
	"bcc/internal/stats"
	"bcc/internal/trace"
	"bcc/internal/vecmath"
)

// Config describes one distributed training run.
type Config struct {
	// Plan fixes the data placement and gradient code.
	Plan coding.Plan
	// Model evaluates partial gradients over data rows.
	Model model.Model
	// Units maps each of the plan's m examples to the raw data rows it
	// contains (dataset.Units output). len(Units) must equal the plan's m
	// and the union must cover the model's rows exactly once.
	Units [][]int
	// Opt is advanced once per iteration with the decoded full gradient.
	Opt optimize.Optimizer
	// Iterations is the number of gradient steps to run.
	Iterations int
	// Latency injects straggler behaviour; nil means Zero.
	Latency Latency
	// IngressPerUnit models the master's receive bottleneck: draining one
	// message unit occupies the master for this many seconds, so messages
	// queue and the per-iteration time grows with the number of messages the
	// master must take — the effect that makes the paper's total running
	// times roughly proportional to the recovery threshold (§III-C). Zero
	// disables the bottleneck (infinitely fast master NIC).
	IngressPerUnit float64
	// Dead lists worker indices that never respond (fault injection).
	Dead []int
	// DropProb makes the master lose each worker transmission independently
	// with this probability (fault injection for lossy networks; workers do
	// not retransmit). Drops are drawn deterministically from DropSeed.
	DropProb float64
	// DropSeed seeds the drop draws (only used when DropProb > 0).
	DropSeed uint64
	// Faults, if non-nil, deterministically schedules per-worker fault
	// events — crashes and restarts, transient slowdown windows, master-side
	// partition windows and correlated drop bursts — identically on every
	// runtime (see internal/faults). Crashed workers do no work, slowdown
	// windows multiply the Latency model's compute and upload draws, and
	// partitioned/burst-dropped transmissions are discarded by the master
	// like DropProb losses. Scheduled events are surfaced through
	// Observer.OnWorkerFault, and an iteration whose reachable workers fall
	// below the scheme's decodable minimum fails fast with
	// ErrBelowThreshold.
	Faults *faults.Plan
	// LossEvery, if positive, evaluates full training loss every k
	// iterations and records it in the stats (costly for large models).
	LossEvery int
	// Trace, if non-nil, records per-iteration worker timelines (sim
	// runtime only; the live runtimes measure wall clock, not modelled
	// spans).
	Trace *trace.Recorder
	// ComputeParallelism fans a worker's per-example gradient computations
	// out over this many goroutines (0/1 = serial). Each example's gradient
	// accumulates into its own buffer, so results are bit-for-bit identical
	// to the serial path.
	ComputeParallelism int
	// DecodeParallelism shards the master's per-iteration decode combination
	// — the p-dimensional linear fold of cyclicrep/cyclicmds/bccmulti — over
	// this many goroutines (0/1 = serial). The sharding is element-wise with
	// deterministic fixed shards, so decoded gradients are bit-for-bit
	// identical to the serial path on every runtime; schemes without a
	// dimension-wise combination ignore the knob.
	DecodeParallelism int
	// MasterShards partitions the master's data plane coordinate-wise into
	// this many contiguous shards (0/1 = the serial master). Each shard
	// independently decodes, scales and optimizer-updates its own slice of
	// the model on a dedicated goroutine, while iteration control — arrival
	// counting, threshold decisions, fault bookkeeping, observer callbacks —
	// stays on the coordinator. Shard boundaries are aligned to the comm
	// plane's wire chunk size, and on the TCP runtime workers scatter each
	// reply's slices directly to per-shard data-plane listeners. Results are
	// bit-for-bit identical to the unsharded master on every runtime (see
	// sharded.go); schemes or optimizers without slice capabilities fall
	// back to the serial path silently.
	MasterShards int
	// Pipelined makes the master broadcast iteration k+1's query the moment
	// iteration k decodes, with workers cancelling stale in-flight work as
	// soon as the fresher query reaches them — instead of serializing
	// iterations at the worker (the iteration barrier). On the live
	// runtimes this shortens real elapsed time when stragglers lag behind
	// whole iterations; on the sim runtime per-iteration stats are
	// unchanged by construction (cancel-on-receive means every round starts
	// with all workers idle) and only Result.TotalElapsed differs.
	Pipelined bool
	// Controller, if non-nil and Plan implements coding.Retunable, re-tunes
	// the plan's active redundancy level at the top of every iteration (see
	// controller.go): the engine gathers deterministic fault-plan telemetry,
	// applies the returned level (clamped and floored at the
	// MinResponders-safe level for the reachable fleet) and broadcasts it
	// with the query, so workers encode and the master decodes each
	// iteration at one agreed level. Nil — or a non-Retunable Plan — keeps
	// the level fixed for the whole run (today's behavior).
	Controller Controller
	// Observer, if non-nil, receives lifecycle callbacks from the engine
	// loop (see observer.go). Hooks run synchronously on the master.
	Observer Observer
	// StopWhen, if non-nil, is evaluated after each iteration's stats are
	// final; returning true ends the run early with the iterations so far
	// (no error — the Result simply holds fewer than Iterations entries).
	StopWhen func(IterStats) bool
	// CheckpointEvery, if positive together with a non-nil Checkpoint,
	// invokes Checkpoint after every CheckpointEvery-th completed iteration
	// with the completed-iteration count. A checkpoint error aborts the run
	// (returning the iterations finished so far alongside the error).
	CheckpointEvery int
	// Checkpoint persists run state; wired by callers (core wires it to
	// Job.Checkpoint). Only consulted when CheckpointEvery > 0.
	Checkpoint func(completed int) error
	// Comm configures the comm-plane payload codec (raw64/f32/topk) and wire
	// chunking; the zero value is the lossless raw64 default. See
	// CommOptions.
	Comm CommOptions
	// PoolCap bounds the run's BufferPool free list (0 = a default derived
	// from the plan's in-flight payload count). Past the cap, recycled
	// buffers spill to the GC instead of being retained — the knob a
	// multi-tenant host uses to keep one large-p job from holding memory
	// hostage while other jobs run. A too-small cap costs allocations, never
	// correctness.
	PoolCap int

	// bufs is the run's shared gradient-buffer pool (see BufferPool for the
	// ownership protocol), created lazily by buffers() before any worker
	// goroutine starts.
	bufs *BufferPool
	// cp is the resolved comm plane, cached by validate()/comm().
	cp    commPlane
	cpSet bool
}

// comm returns the run's resolved comm plane, resolving it on first use.
// validate() resolves (and reports errors for) the configured options before
// any transport is built; this accessor therefore only sees valid options
// and falls back to raw64 defensively if called on an unvalidated config.
func (c *Config) comm() commPlane {
	if !c.cpSet {
		cp, err := c.Comm.resolve(c.Model.Dim())
		if err != nil {
			cp, _ = CommOptions{}.resolve(c.Model.Dim())
		}
		c.cp, c.cpSet = cp, true
	}
	return c.cp
}

// buffers returns the run's shared payload-buffer pool, creating it on first
// use. It must first be called while setup is still single-threaded (the
// engine and every transport constructor do); afterwards the pool itself is
// safe for concurrent use.
func (c *Config) buffers() *BufferPool {
	if c.bufs == nil {
		cap := c.PoolCap
		if cap <= 0 {
			_, n, _ := c.Plan.Params()
			// An iteration keeps up to n * messages-per-worker payloads in
			// flight, each message holding up to two buffers (Vec + Imag) —
			// 2*n*perWorker — and every message carries one communication unit,
			// so CommLoadPerWorker bounds the per-worker message count. Doubling
			// that (to 4*n*perWorker) covers a pipelined straggler round still
			// draining while the next one encodes; the cap only bounds
			// retention, a too-small value would silently re-allocate every
			// iteration.
			perWorker := int(math.Ceil(c.Plan.CommLoadPerWorker()))
			if perWorker < 1 {
				perWorker = 1
			}
			cap = 4*n*perWorker + 64
		}
		c.bufs = NewBufferPool(c.Model.Dim(), cap)
	}
	return c.bufs
}

// Buffers exposes the run's payload-buffer pool (created on first call),
// for callers that accept the run's data-plane connections themselves and
// want reply deserialization to land in the same pool the engine recycles
// into — see ServeMasterPool. Config.Plan and Config.Model must be set.
func (c *Config) Buffers() *BufferPool { return c.buffers() }

func (c *Config) validate() error {
	if c.Plan == nil || c.Model == nil || c.Opt == nil {
		return errors.New("cluster: Config needs Plan, Model and Opt")
	}
	if c.DropProb < 0 || c.DropProb >= 1 {
		return fmt.Errorf("cluster: DropProb %v outside [0, 1)", c.DropProb)
	}
	if c.ComputeParallelism < 0 {
		return fmt.Errorf("cluster: ComputeParallelism %d must be non-negative", c.ComputeParallelism)
	}
	if c.DecodeParallelism < 0 {
		return fmt.Errorf("cluster: DecodeParallelism %d must be non-negative", c.DecodeParallelism)
	}
	if c.MasterShards < 0 {
		return fmt.Errorf("cluster: MasterShards %d must be non-negative", c.MasterShards)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("cluster: CheckpointEvery %d must be non-negative", c.CheckpointEvery)
	}
	if c.PoolCap < 0 {
		return fmt.Errorf("cluster: PoolCap %d must be non-negative", c.PoolCap)
	}
	m, n, _ := c.Plan.Params()
	if len(c.Units) != m {
		return fmt.Errorf("cluster: plan has m=%d examples but %d units supplied", m, len(c.Units))
	}
	if c.Iterations <= 0 {
		return errors.New("cluster: Iterations must be positive")
	}
	seen := make(map[int]bool)
	total := 0
	for u, rows := range c.Units {
		for _, r := range rows {
			if r < 0 || r >= c.Model.NumExamples() {
				return fmt.Errorf("cluster: unit %d references row %d outside model", u, r)
			}
			if seen[r] {
				return fmt.Errorf("cluster: row %d appears in multiple units", r)
			}
			seen[r] = true
			total++
		}
	}
	if total != c.Model.NumExamples() {
		return fmt.Errorf("cluster: units cover %d rows, model has %d", total, c.Model.NumExamples())
	}
	for _, d := range c.Dead {
		if d < 0 || d >= n {
			return fmt.Errorf("cluster: dead worker %d out of range [0,%d)", d, n)
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
		if c.Faults.N != n {
			return fmt.Errorf("cluster: fault plan built for %d workers, cluster has %d", c.Faults.N, n)
		}
	}
	cp, err := c.Comm.resolve(c.Model.Dim())
	if err != nil {
		return err
	}
	c.cp, c.cpSet = cp, true
	return nil
}

func (c *Config) latency() Latency {
	if c.Latency == nil {
		return Zero{}
	}
	return c.Latency
}

func (c *Config) deadSet() map[int]bool {
	dead := make(map[int]bool, len(c.Dead))
	for _, d := range c.Dead {
		dead[d] = true
	}
	return dead
}

// IterStats records one iteration's measurements, mirroring the breakdown of
// the paper's Tables I and II.
type IterStats struct {
	Iter int
	// Wall is the iteration's duration in simulated seconds (sim runtime) or
	// scaled real seconds (live runtimes).
	Wall float64
	// Compute is the maximum computation time among the workers whose
	// results the master counted — the paper's computation-time metric.
	Compute float64
	// Comm is Wall - Compute, the paper's communication-time approximation.
	Comm float64
	// WorkersHeard is the realized recovery threshold |W| this iteration.
	WorkersHeard int
	// Units is the realized communication load this iteration.
	Units float64
	// Bytes counts payload bytes the master received this iteration, as
	// modelled from the configured payload codec (element bytes only, no
	// framing). It is runtime-independent: sim, live and tcp report the same
	// value for the same run.
	Bytes int
	// WireBytesIn and WireBytesOut count bytes MEASURED at the wire layer
	// this iteration — every byte read from and written to the master's
	// connections, framing and headers included. Only transports with real
	// sockets report them (the tcp fabric); sim and the channel fabric leave
	// them zero. Unlike Bytes they are an observation, not a model, so they
	// are excluded from cross-runtime conformance.
	WireBytesIn  int
	WireBytesOut int
	// GradNorm is the Euclidean norm of the decoded (normalized) gradient.
	GradNorm float64
	// Level is the active redundancy level this iteration on plans that
	// implement coding.Retunable (the nested family); 0 on fixed plans. It
	// is runtime-independent: the controller's decisions derive only from
	// deterministic telemetry.
	Level int
	// Loss is the full training loss, if LossEvery sampled this iteration
	// (NaN otherwise).
	Loss float64
}

// Result aggregates a full run.
type Result struct {
	// FinalW is the learned iterate after the last iteration.
	FinalW []float64
	// Iters holds per-iteration stats in order.
	Iters []IterStats
	// TotalWall, TotalCompute, TotalComm are sums over iterations.
	TotalWall, TotalCompute, TotalComm float64
	// TotalElapsed sums each iteration's full duration, straggler tail
	// included. On the sim runtime it is modelled: in barrier mode each
	// round additionally waits for the tail to finish draining, while in
	// pipelined mode each round ends at its decode instant (so
	// TotalElapsed == TotalWall). On the live runtimes it is measured
	// (scaled real seconds per iteration); master work between iterations
	// — optimizer advance, LossEvery evaluations — is not timed on any
	// runtime.
	TotalElapsed float64
	// AvgWorkersHeard is the empirical recovery threshold (Definition 2).
	AvgWorkersHeard float64
	// AvgUnits is the empirical communication load (Definition 3).
	AvgUnits float64
	// TotalBytes counts all payload bytes received by the master (modelled
	// from the payload codec, like IterStats.Bytes).
	TotalBytes int
	// TotalWireIn and TotalWireOut sum the per-iteration measured wire
	// bytes (tcp runtime only; zero elsewhere), plus — with
	// LiveOptions.Drain — the post-run drain residue: the engine drains the
	// fabric before assembling the Result, so straggler reply frames still
	// in flight at the final decode are read and counted rather than racing
	// the shutdown, making the totals reproducible run to run. Handshake
	// frames (read during accept) and shutdown frames fall outside both
	// windows and are never included.
	TotalWireIn  int
	TotalWireOut int
	// Shards holds the per-shard cumulative stats of a sharded master run
	// (Config.MasterShards > 1 with slice-capable scheme and optimizer);
	// nil otherwise.
	Shards []ShardStats
	// LevelSwitches counts the iterations at which a Retunable plan's
	// active level changed from the previous iteration's (0 on fixed
	// plans): the controller's re-tuning activity over the run.
	LevelSwitches int
}

// WallSummary returns descriptive statistics of the per-iteration wall
// times (mean, spread, quantiles) — the straggler variance a raw total
// hides.
func (r *Result) WallSummary() stats.Summary {
	xs := make([]float64, len(r.Iters))
	for i, it := range r.Iters {
		xs[i] = it.Wall
	}
	return stats.Summarize(xs)
}

// ThresholdSummary returns descriptive statistics of the per-iteration
// realized recovery thresholds.
func (r *Result) ThresholdSummary() stats.Summary {
	xs := make([]float64, len(r.Iters))
	for i, it := range r.Iters {
		xs[i] = float64(it.WorkersHeard)
	}
	return stats.Summarize(xs)
}

func summarize(finalW []float64, iters []IterStats) *Result {
	res := &Result{FinalW: finalW, Iters: iters}
	prevLevel := 0
	for _, it := range iters {
		if it.Level != 0 {
			if prevLevel != 0 && it.Level != prevLevel {
				res.LevelSwitches++
			}
			prevLevel = it.Level
		}
		res.TotalWall += it.Wall
		res.TotalCompute += it.Compute
		res.TotalComm += it.Comm
		res.AvgWorkersHeard += float64(it.WorkersHeard)
		res.AvgUnits += it.Units
		res.TotalBytes += it.Bytes
		res.TotalWireIn += it.WireBytesIn
		res.TotalWireOut += it.WireBytesOut
	}
	if len(iters) > 0 {
		res.AvgWorkersHeard /= float64(len(iters))
		res.AvgUnits /= float64(len(iters))
	}
	return res
}

// workerPoints returns, per worker, the number of raw data points its
// assignment covers (the computational load in points, which drives the
// latency model).
func workerPoints(plan coding.Plan, units [][]int) []int {
	assign := plan.Assignments()
	pts := make([]int, len(assign))
	for w, a := range assign {
		for _, u := range a {
			pts[w] += len(units[u])
		}
	}
	return pts
}

// prefixPoints returns, per worker, the cumulative point counts of its
// assignment prefixes: out[w][k] is the raw-data-point load of worker w's
// first k assigned units. Retunable plans keep every level's assignment a
// prefix of the full one, so out[w][L] is the computational load (in
// points) at level L — the value both the sim transport and a live worker
// must feed the latency model for identical compute draws.
func prefixPoints(assign [][]int, units [][]int) [][]int {
	out := make([][]int, len(assign))
	for w, a := range assign {
		pref := make([]int, len(a)+1)
		for k, u := range a {
			pref[k+1] = pref[k] + len(units[u])
		}
		out[w] = pref
	}
	return out
}

// gradientModel is the minimal model surface workers need.
type gradientModel interface {
	Dim() int
	SubsetGradient(w []float64, rows []int, out []float64)
}

// ensureParts resizes a worker's partial-gradient scratch to k buffers of
// length dim, reusing existing buffers; contents are stale and are zeroed by
// gradientPartsInto before use.
func ensureParts(scratch [][]float64, k, dim int) [][]float64 {
	if cap(scratch) < k {
		grown := make([][]float64, k)
		copy(grown, scratch[:cap(scratch)])
		scratch = grown
	}
	scratch = scratch[:k]
	for i := range scratch {
		if len(scratch[i]) != dim {
			scratch[i] = make([]float64, dim)
		}
	}
	return scratch
}

// gradientPartsInto is the shared worker-side computation used by the sim
// transport and by RunWorker in the live runtimes: parts[k] becomes the
// gradient sum of unit assign[k] at query point q, written into the caller's
// reusable scratch (grown on first use, allocation-free thereafter). With
// parallelism > 1 the examples are sharded over goroutines; each example
// writes only its own buffer, so the result is bit-for-bit equal to the
// serial path. The returned slice is the (possibly regrown) scratch.
func gradientPartsInto(mod gradientModel, units [][]int, assign []int, q []float64, parallelism int, scratch [][]float64) [][]float64 {
	parts := ensureParts(scratch, len(assign), mod.Dim())
	if parallelism <= 1 || len(assign) < 2 {
		// A plain call (no closure) keeps the serial hot path free of the
		// heap-allocated func value the goroutine fan-out below would force.
		evalParts(mod, units, assign, q, parts, 0, len(assign))
		return parts
	}
	workers := parallelism
	if workers > len(assign) {
		workers = len(assign)
	}
	var wg sync.WaitGroup
	chunk := (len(assign) + workers - 1) / workers
	for lo := 0; lo < len(assign); lo += chunk {
		hi := lo + chunk
		if hi > len(assign) {
			hi = len(assign)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			evalParts(mod, units, assign, q, parts, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return parts
}

// evalParts computes the partial gradients for assignment slots [lo, hi)
// into the caller's scratch buffers (zeroed here before accumulation).
func evalParts(mod gradientModel, units [][]int, assign []int, q []float64, parts [][]float64, lo, hi int) {
	for k := lo; k < hi; k++ {
		g := parts[k]
		vecmath.Fill(g, 0)
		mod.SubsetGradient(q, units[assign[k]], g)
	}
}

// ErrStalled is returned when every alive worker has reported and the
// decoder still cannot reconstruct the gradient (e.g. too many dead workers
// for the scheme's redundancy).
var ErrStalled = errors.New("cluster: all alive workers reported but gradient is not decodable")

// ErrBelowThreshold is returned when dead workers or the fault plan leave
// an iteration with fewer reachable workers than the scheme can possibly
// decode from (coding.MinResponders): the engine degrades explicitly before
// running the doomed iteration, keeping the completed iterations as a
// partial Result. It matches ErrStalled under errors.Is (without inheriting
// its all-workers-reported message — on this path the iteration never ran),
// so errors.Is(err, ErrStalled) continues to identify every
// unrecoverable-gradient failure.
var ErrBelowThreshold error = belowThresholdError{}

type belowThresholdError struct{}

func (belowThresholdError) Error() string {
	return "cluster: too few reachable workers to ever decode"
}

// Is makes errors.Is(ErrBelowThreshold, ErrStalled) true: both report an
// unrecoverable gradient, they differ only in when that was detected.
func (belowThresholdError) Is(target error) bool { return target == ErrStalled }

// dropper decides, deterministically from its seed, whether a transmission
// is lost. A nil dropper never drops.
type dropper struct {
	prob float64
	rng  *rngutil.RNG
}

func (c *Config) newDropper() *dropper {
	if c.DropProb <= 0 {
		return nil
	}
	seed := c.DropSeed
	if seed == 0 {
		seed = 0xd20b
	}
	return &dropper{prob: c.DropProb, rng: rngutil.New(seed)}
}

func (d *dropper) drop() bool {
	if d == nil {
		return false
	}
	return d.rng.Bernoulli(d.prob)
}

// finishIteration folds the decoded gradient into the optimizer and fills
// the iteration stats shared by all runtimes. grad is the engine's reusable
// decode buffer (length Dim), fully overwritten here.
func finishIteration(cfg *Config, dec coding.Decoder, grad []float64, st *IterStats) error {
	if err := dec.DecodeInto(grad); err != nil {
		return err
	}
	vecmath.Scale(1/float64(cfg.Model.NumExamples()), grad)
	cfg.Opt.Update(grad)
	st.WorkersHeard = dec.WorkersHeard()
	st.Units = dec.UnitsReceived()
	st.GradNorm = vecmath.Norm2(grad)
	return nil
}
