// Package cluster is the distributed execution fabric the experiments run
// on. One event-driven master engine (engine.go) owns the per-iteration
// lifecycle — broadcast the query, consume worker arrivals, offer them to
// the decoder, finish the moment the gradient is decodable, advance the
// optimizer, record stats — and is parameterized by a small Transport /
// ArrivalSource interface. Three transports feed it: a discrete-event
// simulator (sim.go), in-process goroutine workers over channels (live.go),
// and goroutine or out-of-process workers over real TCP sockets (tcp.go),
// with pluggable schemes (internal/coding) and pluggable latency models
// (this file) shared by all of them. Config.Pipelined switches every
// runtime from barrier iterations to pipelined ones: the next query goes
// out the instant an iteration decodes, and workers cancel straggler work
// in flight. Config.Faults injects deterministic fault schedules
// (internal/faults) — crashes, slowdowns, partitions, drop bursts —
// replayed identically by every transport.
//
// The fabric substitutes for the paper's EC2 cluster: the measured
// quantities (recovery threshold, communication/computation time split,
// total runtime) depend only on the order statistics of worker finish times
// and on message counts, which the latency models reproduce using the
// paper's own shift-exponential straggler model (§IV eq. 15).
package cluster

import (
	"fmt"

	"bcc/internal/faults"
	"bcc/internal/rngutil"
)

// Latency models the per-iteration timing of the cluster. Implementations
// must be safe for concurrent use ACROSS workers (per-worker state only);
// calls for one worker always happen sequentially in the order Broadcast,
// Compute, Upload within each iteration, in every runtime, so that latency
// draws are identical between the simulated and live runtimes.
type Latency interface {
	// Broadcast returns the master-to-worker model delivery time (seconds).
	Broadcast(worker, iter int) float64
	// Compute returns worker's time to process the given number of raw data
	// points (seconds).
	Compute(worker, iter, points int) float64
	// Upload returns worker's time to transfer a message group of the given
	// size, in units of one gradient vector (seconds).
	Upload(worker, iter int, units float64) float64
}

// faultLatency applies a fault plan's scheduled slowdown windows on top of
// a base latency model: the plan's multiplicative factor scales the
// worker's compute and upload draws (like Fixed.Factor, broadcast delivery
// is unscaled). SlowFactor is a pure function of (worker, iteration), so
// wrapping preserves the base model's cross-runtime draw alignment.
type faultLatency struct {
	base Latency
	plan *faults.Plan
}

// withFaultSlowdowns wraps base with plan's slowdown windows; it returns
// base unchanged when the plan schedules none.
func withFaultSlowdowns(base Latency, plan *faults.Plan) Latency {
	if plan == nil || len(plan.Slowdowns) == 0 {
		return base
	}
	return faultLatency{base: base, plan: plan}
}

func (l faultLatency) Broadcast(w, iter int) float64 { return l.base.Broadcast(w, iter) }

func (l faultLatency) Compute(w, iter, points int) float64 {
	return l.plan.SlowFactor(w, iter) * l.base.Compute(w, iter, points)
}

func (l faultLatency) Upload(w, iter int, units float64) float64 {
	return l.plan.SlowFactor(w, iter) * l.base.Upload(w, iter, units)
}

// Zero is a Latency with no delays; useful for logic-only tests.
type Zero struct{}

func (Zero) Broadcast(int, int) float64       { return 0 }
func (Zero) Compute(int, int, int) float64    { return 0 }
func (Zero) Upload(int, int, float64) float64 { return 0 }

// Fixed is a deterministic latency model: constant per-point compute cost
// and per-unit upload cost, with an optional per-worker speed factor
// (factor 2 means twice as slow). It makes timing assertions in tests exact.
type Fixed struct {
	BroadcastTime float64
	PerPoint      float64
	PerUnit       float64
	// Factor[w] scales worker w's compute and upload times; nil means all 1.
	Factor []float64
}

func (f Fixed) factor(w int) float64 {
	if f.Factor == nil || w >= len(f.Factor) {
		return 1
	}
	return f.Factor[w]
}

func (f Fixed) Broadcast(w, _ int) float64 { return f.BroadcastTime }
func (f Fixed) Compute(w, _ int, points int) float64 {
	return f.factor(w) * f.PerPoint * float64(points)
}
func (f Fixed) Upload(w, _ int, units float64) float64 {
	return f.factor(w) * f.PerUnit * units
}

// ShiftExpParams are the per-worker parameters of the paper's latency model
// (eq. 15): a deterministic shift a*load plus an exponential tail of rate
// mu/load, applied separately to computation (load = data points) and
// communication (load = message units).
type ShiftExpParams struct {
	// ComputeShift (a_c) is the deterministic seconds per data point.
	ComputeShift float64
	// ComputeMu (mu_c) is the straggler parameter of the compute tail;
	// larger mu = lighter tail. The expected tail is points/mu_c.
	ComputeMu float64
	// CommShift (a_u) is the deterministic seconds per message unit.
	CommShift float64
	// CommMu (mu_u) is the straggler parameter of the upload tail.
	CommMu float64
	// BroadcastShift/BroadcastMu model the model download (load 1).
	BroadcastShift float64
	BroadcastMu    float64
}

// ShiftExp draws per-iteration latencies from the paper's shift-exponential
// model, one independent stream per worker so runtimes can draw from
// concurrent goroutines deterministically.
type ShiftExp struct {
	params  []ShiftExpParams
	streams []*rngutil.RNG
}

// NewShiftExp builds the model for n workers. If params has length 1 the
// single parameter set applies to every worker (homogeneous cluster);
// otherwise it must have length n. Streams are split from rng.
func NewShiftExp(n int, params []ShiftExpParams, rng *rngutil.RNG) (*ShiftExp, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: NewShiftExp with n=%d", n)
	}
	if len(params) != 1 && len(params) != n {
		return nil, fmt.Errorf("cluster: NewShiftExp needs 1 or %d parameter sets, got %d", n, len(params))
	}
	if rng == nil {
		return nil, fmt.Errorf("cluster: NewShiftExp needs an rng")
	}
	ps := make([]ShiftExpParams, n)
	for w := 0; w < n; w++ {
		if len(params) == 1 {
			ps[w] = params[0]
		} else {
			ps[w] = params[w]
		}
	}
	return &ShiftExp{params: ps, streams: rng.SplitN(n)}, nil
}

func (s *ShiftExp) draw(w int, mu, shift, load float64) float64 {
	if load <= 0 {
		return 0
	}
	if mu <= 0 { // no stochastic tail configured
		return shift * load
	}
	return s.streams[w].ShiftedExponential(mu, shift, load)
}

func (s *ShiftExp) Broadcast(w, _ int) float64 {
	p := s.params[w]
	if p.BroadcastShift == 0 && p.BroadcastMu == 0 {
		return 0
	}
	return s.draw(w, p.BroadcastMu, p.BroadcastShift, 1)
}

func (s *ShiftExp) Compute(w, _ int, points int) float64 {
	p := s.params[w]
	return s.draw(w, p.ComputeMu, p.ComputeShift, float64(points))
}

func (s *ShiftExp) Upload(w, _ int, units float64) float64 {
	p := s.params[w]
	return s.draw(w, p.CommMu, p.CommShift, units)
}
