package cluster

import (
	"math"
	"testing"
	"time"

	"bcc/internal/vecmath"
)

// The equivalence tests pin the arrival order: with a per-worker staggered
// Fixed latency the workers finish strictly in index order, spaced far
// enough apart (in scaled real time) that the goroutine and TCP runtimes
// realize the same order the simulator models. Every runtime then counts
// the same worker set, so recovery thresholds and comm loads must agree
// exactly — the engine is one piece of code, only the transport differs.

// staggerGapVirtual is the virtual-seconds gap between consecutive workers'
// arrivals; with liveEquivScale it is 15 ms of real time per step, wide
// enough to be robust against scheduler jitter on loaded CI machines.
const (
	staggerGapVirtual = 1.0
	liveEquivScale    = 15e-3
)

// staggered returns a Fixed latency whose worker w finishes its (equal-load)
// computation (w+1)*staggerGapVirtual virtual seconds after broadcast.
func staggered(n, points int) Fixed {
	factors := make([]float64, n)
	for w := range factors {
		factors[w] = float64(w + 1)
	}
	return Fixed{PerPoint: staggerGapVirtual / float64(points), Factor: factors}
}

// equivCase is one row of the cross-runtime equivalence table.
type equivCase struct {
	name      string
	scheme    string
	m, n, r   int
	iters     int
	seed      uint64
	dead      []int
	dropProb  float64
	dropSeed  uint64
	pipelined bool
}

func (c equivCase) config(t *testing.T) *Config {
	t.Helper()
	// buildRun gives every worker points = 4*r raw points (equal loads), so
	// the staggered factors alone fix the arrival order.
	cfg, _ := buildRun(t, c.scheme, c.m, c.n, c.r, c.iters, c.seed, staggered(c.n, 4*c.r))
	cfg.Dead = c.dead
	cfg.DropProb = c.dropProb
	cfg.DropSeed = c.dropSeed
	cfg.Pipelined = c.pipelined
	return cfg
}

// engineRuntime is one way of running the shared engine.
type engineRuntime struct {
	name string
	run  func(cfg *Config) (*Result, error)
}

func equivRuntimes() []engineRuntime {
	liveOpts := func(tcp bool, codec string) LiveOptions {
		return LiveOptions{TimeScale: liveEquivScale, Timeout: 60 * time.Second, TCP: tcp, Codec: codec}
	}
	return []engineRuntime{
		{"sim", RunSim},
		{"live", func(cfg *Config) (*Result, error) { return RunLive(cfg, liveOpts(false, "")) }},
		{"tcp-gob", func(cfg *Config) (*Result, error) { return RunLive(cfg, liveOpts(true, "gob")) }},
		{"tcp-wire", func(cfg *Config) (*Result, error) { return RunLive(cfg, liveOpts(true, "wire")) }},
	}
}

// TestRuntimesEquivalent asserts that the sim, live and tcp runtimes (the
// latter under both frame codecs) produce identical per-iteration recovery
// thresholds, comm loads and payload bytes, and bit-identical weights, for
// the same Spec-level inputs and seed — including dead-worker and DropProb
// fault injection and pipelined mode.
func TestRuntimesEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("staggered live runs sleep real time")
	}
	cases := []equivCase{
		{name: "bcc", scheme: "bcc", m: 8, n: 6, r: 2, iters: 2, seed: 50},
		{name: "uncoded", scheme: "uncoded", m: 6, n: 6, r: 1, iters: 2, seed: 51},
		{name: "cyclicrep-dead", scheme: "cyclicrep", m: 6, n: 6, r: 2, iters: 2, seed: 52, dead: []int{2}},
		{name: "cyclicmds-wirepayload", scheme: "cyclicmds", m: 6, n: 6, r: 2, iters: 2, seed: 53},
		{name: "bcc-drops", scheme: "bcc", m: 8, n: 12, r: 2, iters: 2, seed: 54, dropProb: 0.2, dropSeed: 7},
		{name: "bcc-pipelined", scheme: "bcc", m: 8, n: 6, r: 2, iters: 2, seed: 50, pipelined: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var ref *Result
			var refName string
			for _, rt := range equivRuntimes() {
				res, err := rt.run(tc.config(t))
				if err != nil {
					t.Fatalf("%s: %v", rt.name, err)
				}
				if len(res.Iters) != tc.iters {
					t.Fatalf("%s recorded %d iterations, want %d", rt.name, len(res.Iters), tc.iters)
				}
				if ref == nil {
					ref, refName = res, rt.name
					continue
				}
				for i, it := range res.Iters {
					want := ref.Iters[i]
					if it.WorkersHeard != want.WorkersHeard {
						t.Errorf("%s iter %d: recovery threshold %d, %s saw %d",
							rt.name, i, it.WorkersHeard, refName, want.WorkersHeard)
					}
					if it.Units != want.Units {
						t.Errorf("%s iter %d: comm load %v, %s saw %v",
							rt.name, i, it.Units, refName, want.Units)
					}
					if it.Bytes != want.Bytes {
						t.Errorf("%s iter %d: payload %d bytes, %s saw %d",
							rt.name, i, it.Bytes, refName, want.Bytes)
					}
				}
				if d := vecmath.MaxAbsDiff(res.FinalW, ref.FinalW); d != 0 {
					t.Errorf("%s final weights differ from %s by %v", rt.name, refName, d)
				}
			}
		})
	}
}

// TestPipelinedSimMatchesBarrierStats checks the sim transport's documented
// property: pipelining cannot change per-iteration stats (cancel-on-receive
// means every round starts with all workers idle), it only removes the
// barrier wait from the end-to-end time.
func TestPipelinedSimMatchesBarrierStats(t *testing.T) {
	run := func(pipelined bool) *Result {
		// One heavy straggler: its arrival trails the decode point, so the
		// barrier must wait for it while the pipelined master does not.
		lat := Fixed{PerPoint: 0.01, PerUnit: 1, Factor: []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 50}}
		cfg, _ := buildRun(t, "bcc", 8, 10, 2, 6, 60, lat)
		cfg.IngressPerUnit = 0.01
		cfg.Pipelined = pipelined
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	barrier, pipe := run(false), run(true)
	if d := vecmath.MaxAbsDiff(barrier.FinalW, pipe.FinalW); d != 0 {
		t.Fatalf("pipelining changed training by %v", d)
	}
	for i := range barrier.Iters {
		a, b := barrier.Iters[i], pipe.Iters[i]
		// NaN Loss sentinels compare unequal; neutralize them first.
		a.Loss, b.Loss = 0, 0
		if a != b {
			t.Fatalf("iteration %d stats differ: %+v vs %+v", i, barrier.Iters[i], pipe.Iters[i])
		}
	}
	if pipe.TotalElapsed != pipe.TotalWall {
		t.Fatalf("pipelined elapsed %v should equal decode-time total %v", pipe.TotalElapsed, pipe.TotalWall)
	}
	if barrier.TotalElapsed <= pipe.TotalElapsed {
		t.Fatalf("barrier elapsed %v not above pipelined %v despite a straggler tail",
			barrier.TotalElapsed, pipe.TotalElapsed)
	}
}

// TestPipelinedLiveCancelsStragglers runs the goroutine runtime in pipelined
// mode with one catastrophically slow worker: the fresher broadcasts must
// preempt its stale sleeps so the run finishes fast, and cancellation must
// not perturb the training outcome.
func TestPipelinedLiveCancelsStragglers(t *testing.T) {
	factors := make([]float64, 30)
	for i := range factors {
		factors[i] = 1
	}
	factors[0] = 1000
	lat := Fixed{PerPoint: 1e-4, PerUnit: 0.01, Factor: factors}
	mk := func() *Config {
		cfg, _ := buildRun(t, "bcc", 10, 30, 2, 4, 61, lat)
		cfg.Pipelined = true
		return cfg
	}
	start := time.Now()
	res, err := RunLive(mk(), LiveOptions{TimeScale: 1e-2, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("pipelined run waited for the straggler: %v", elapsed)
	}
	simCfg := mk()
	simRes, err := RunSim(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := vecmath.MaxAbsDiff(res.FinalW, simRes.FinalW); d != 0 {
		t.Fatalf("pipelined live weights differ from sim by %v", d)
	}
}

// TestPipelinedTCPEndToEnd drives pipelined mode through the TCP fabric and
// the compact wire codec together. The straggler factors make slow workers'
// sleeps genuinely outlast decode points, so fresher broadcasts must
// preempt stale sleeps over real sockets (the reader-channel path).
func TestPipelinedTCPEndToEnd(t *testing.T) {
	factors := make([]float64, 16)
	for i := range factors {
		factors[i] = 1
	}
	factors[3], factors[9] = 200, 500
	lat := Fixed{PerPoint: 1e-3, PerUnit: 0.05, Factor: factors}
	mk := func() *Config {
		cfg, _ := buildRun(t, "bcc", 8, 16, 2, 5, 62, lat)
		cfg.Pipelined = true
		return cfg
	}
	res, err := RunLive(mk(), LiveOptions{TimeScale: 1e-3, TCP: true, Codec: "wire", Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := RunSim(mk())
	if err != nil {
		t.Fatal(err)
	}
	if d := vecmath.MaxAbsDiff(res.FinalW, simRes.FinalW); d != 0 {
		t.Fatalf("pipelined tcp weights differ from sim by %v", d)
	}
	if res.TotalBytes == 0 {
		t.Fatal("pipelined tcp run reported zero bytes")
	}
}

// TestRunTransportValidates covers the exported engine entry point future
// runtimes use.
func TestRunTransportValidates(t *testing.T) {
	cfg, _ := buildRun(t, "uncoded", 8, 4, 2, 3, 63, Zero{})
	cfg.Iterations = 0
	if _, err := RunTransport(cfg, newSimTransport(cfg)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestRunTransportSimRoundTrip exercises RunTransport on a valid config so
// the exported path is known-good, and checks the barrier-mode elapsed
// bookkeeping: with zero latency and no ingress cost every round ends at
// time 0 on the virtual clock.
func TestRunTransportSimRoundTrip(t *testing.T) {
	cfg, _ := buildRun(t, "bcc", 8, 8, 2, 4, 64, Zero{})
	res, err := RunTransport(cfg, newSimTransport(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 4 {
		t.Fatalf("recorded %d iterations", len(res.Iters))
	}
	if res.TotalElapsed != 0 || res.TotalWall != 0 {
		t.Fatalf("zero-latency run has elapsed %v wall %v", res.TotalElapsed, res.TotalWall)
	}
	if math.IsNaN(res.AvgWorkersHeard) || res.AvgWorkersHeard <= 0 {
		t.Fatalf("avg workers heard %v", res.AvgWorkersHeard)
	}
}
