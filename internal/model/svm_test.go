package model

import (
	"testing"

	"bcc/internal/dataset"
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

func testSVM(t *testing.T, lambda float64) *SVM {
	t.Helper()
	rng := rngutil.New(20)
	d, err := dataset.Generate(dataset.Config{N: 80, Dim: 6, Separation: 1.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return &SVM{Data: d, Lambda: lambda}
}

func TestSVMGradCheck(t *testing.T) {
	m := testSVM(t, 0)
	w := randW(21, m.Dim())
	rows := []int{0, 7, 15, 40, 79}
	// The squared hinge is C1 (continuous first derivative); central
	// differences are accurate away from the measure-zero kink set.
	if worst := GradCheck(m, w, rows, 1e-6); worst > 1e-4 {
		t.Fatalf("SVM gradient check failed: %v", worst)
	}
}

func TestSVMGradCheckRegularized(t *testing.T) {
	m := testSVM(t, 0.3)
	w := randW(22, m.Dim())
	if worst := GradCheck(m, w, []int{1, 2, 3}, 1e-6); worst > 1e-4 {
		t.Fatalf("regularized SVM gradient check failed: %v", worst)
	}
}

func TestSVMSubsetAdditivity(t *testing.T) {
	m := testSVM(t, 0.1)
	w := randW(23, m.Dim())
	a := []int{0, 1, 2}
	b := []int{3, 4}
	union := append(append([]int{}, a...), b...)
	ga := make([]float64, m.Dim())
	gb := make([]float64, m.Dim())
	gu := make([]float64, m.Dim())
	m.SubsetGradient(w, a, ga)
	m.SubsetGradient(w, b, gb)
	m.SubsetGradient(w, union, gu)
	if d := vecmath.MaxAbsDiff(vecmath.Add(ga, gb), gu); d > 1e-12 {
		t.Fatalf("SVM subset gradients not additive: %v", d)
	}
}

func TestSVMMarginPointsContributeNothing(t *testing.T) {
	// With a huge weight vector aligned to labels, every margin exceeds 1
	// and the unregularized gradient must vanish.
	rng := rngutil.New(24)
	d, _ := dataset.Generate(dataset.Config{N: 50, Dim: 8, Separation: 40, StandardLabels: true}, rng)
	m := NewSVM(d)
	// Train roughly toward separation first.
	w := make([]float64, m.Dim())
	for it := 0; it < 300; it++ {
		g := FullGradient(m, w)
		vecmath.Axpy(-0.2, g, w)
	}
	vecmath.Scale(50, w) // blow up the margin
	g := make([]float64, m.Dim())
	rows := make([]int, m.NumExamples())
	for i := range rows {
		rows[i] = i
	}
	m.SubsetGradient(w, rows, g)
	if vecmath.NormInf(g) > 1e-9 {
		// Some points may genuinely be misclassified; only fail if loss is
		// zero yet gradient is not.
		if m.SubsetLoss(w, rows) == 0 {
			t.Fatalf("zero loss but nonzero gradient %v", vecmath.NormInf(g))
		}
	}
}

func TestSVMTrainsToHighAccuracy(t *testing.T) {
	rng := rngutil.New(25)
	d, _ := dataset.Generate(dataset.Config{N: 400, Dim: 10, Separation: 40, StandardLabels: true}, rng)
	m := NewSVM(d)
	w := make([]float64, m.Dim())
	l0 := FullLoss(m, w)
	for it := 0; it < 300; it++ {
		g := FullGradient(m, w)
		vecmath.Axpy(-0.2, g, w)
	}
	if l1 := FullLoss(m, w); l1 >= l0 {
		t.Fatalf("SVM loss did not decrease: %v -> %v", l0, l1)
	}
	if acc := m.Accuracy(w); acc < 0.8 {
		t.Fatalf("SVM accuracy %v too low", acc)
	}
}
