// Package model defines the learning tasks whose gradients are computed
// distributedly: L2-regularized logistic regression (the paper's task) and
// linear least squares (a second workload exercising the same machinery).
//
// Conventions. A Model computes, for a set of data rows G, the SUM of
// per-example gradients sum_{j in G} g_j(w) — the quantity a worker ships.
// The master divides the aggregated sum by the dataset size to obtain the
// paper's gradient (1/m) sum_j g_j (eq. 1). Losses follow the same
// convention (sums, normalized by the caller).
//
// All models evaluate against vecmath.AnyMatrix row kernels, so a worker's
// per-example gradient costs O(nnz of the row) on CSR data and O(p) on
// dense — with bit-identical results for a CSR matrix holding exactly the
// dense matrix's nonzeros.
package model

import (
	"fmt"
	"math"

	"bcc/internal/dataset"
	"bcc/internal/vecmath"
)

// Model is a differentiable empirical-risk model over a fixed dataset.
type Model interface {
	// Dim returns the parameter dimension.
	Dim() int
	// NumExamples returns the number of data points backing the model.
	NumExamples() int
	// SubsetGradient accumulates sum_{j in rows} grad ell_j(w) into out,
	// which must be zeroed by the caller and have length Dim().
	SubsetGradient(w []float64, rows []int, out []float64)
	// SubsetLoss returns sum_{j in rows} ell_j(w).
	SubsetLoss(w []float64, rows []int) float64
}

// FullGradient evaluates the normalized full gradient (1/d) sum_j g_j(w).
func FullGradient(m Model, w []float64) []float64 {
	out := make([]float64, m.Dim())
	FullGradientInto(m, w, out, nil)
	return out
}

// FullGradientInto evaluates the normalized full gradient (1/d) sum_j g_j(w)
// into out (length Dim(), fully overwritten). rows is optional scratch: pass
// AllRows(m.NumExamples()) — typically held across calls — to avoid
// reallocating the row list per evaluation; nil allocates one internally.
func FullGradientInto(m Model, w, out []float64, rows []int) {
	if rows == nil {
		rows = AllRows(m.NumExamples())
	}
	vecmath.Fill(out, 0)
	m.SubsetGradient(w, rows, out)
	vecmath.Scale(1/float64(m.NumExamples()), out)
}

// FullLoss evaluates the normalized empirical risk (1/d) sum_j ell_j(w).
func FullLoss(m Model, w []float64) float64 {
	rows := AllRows(m.NumExamples())
	return m.SubsetLoss(w, rows) / float64(m.NumExamples())
}

// AllRows returns the identity row list [0, 1, ..., n). Callers evaluating
// full gradients or losses in a loop hold one AllRows slice as scratch for
// the *Into entry points.
func AllRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// ---------------------------------------------------------------------------
// Logistic regression
// ---------------------------------------------------------------------------

// Logistic is binary logistic regression with labels in {-1, +1}:
// ell_j(w) = log(1 + exp(-y_j x_j^T w)) + (lambda/2) ||w||^2 / d_total.
// The regularizer is spread uniformly over examples so that summing
// per-example gradients reproduces the regularized full gradient.
type Logistic struct {
	Data   *dataset.Dataset
	Lambda float64 // L2 regularization strength (0 = none, as in the paper)
}

// NewLogistic wraps a dataset in an unregularized logistic model.
func NewLogistic(d *dataset.Dataset) *Logistic { return &Logistic{Data: d} }

// Dim returns the feature dimension.
func (l *Logistic) Dim() int { return l.Data.Dim() }

// NumExamples returns the number of data points.
func (l *Logistic) NumExamples() int { return l.Data.N() }

// SubsetGradient implements Model.
func (l *Logistic) SubsetGradient(w []float64, rows []int, out []float64) {
	if len(out) != l.Dim() {
		panic(fmt.Sprintf("model: gradient buffer %d != dim %d", len(out), l.Dim()))
	}
	x := l.Data.X
	for _, j := range rows {
		yj := l.Data.Y[j]
		margin := yj * x.RowDot(j, w)
		// d/dw log(1+exp(-margin)) = -y * sigma(-margin) * x
		coeff := -yj * sigmoid(-margin)
		x.RowAxpy(coeff, j, out)
	}
	if l.Lambda != 0 {
		frac := l.Lambda * float64(len(rows)) / float64(l.NumExamples())
		vecmath.Axpy(frac, w, out)
	}
}

// SubsetLoss implements Model.
func (l *Logistic) SubsetLoss(w []float64, rows []int) float64 {
	x := l.Data.X
	var s float64
	for _, j := range rows {
		margin := l.Data.Y[j] * x.RowDot(j, w)
		s += logistic(margin)
	}
	if l.Lambda != 0 {
		n2 := vecmath.Dot(w, w)
		s += 0.5 * l.Lambda * n2 * float64(len(rows)) / float64(l.NumExamples())
	}
	return s
}

// Accuracy returns the fraction of points whose sign(x^T w) matches the
// label.
func (l *Logistic) Accuracy(w []float64) float64 {
	correct := 0
	for j := 0; j < l.NumExamples(); j++ {
		score := l.Data.X.RowDot(j, w)
		pred := 1.0
		if score < 0 {
			pred = -1
		}
		if pred == l.Data.Y[j] {
			correct++
		}
	}
	return float64(correct) / float64(l.NumExamples())
}

// logistic returns log(1 + exp(-m)) computed stably.
func logistic(m float64) float64 {
	if m > 0 {
		return math.Log1p(math.Exp(-m))
	}
	return -m + math.Log1p(math.Exp(m))
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// ---------------------------------------------------------------------------
// Linear least squares
// ---------------------------------------------------------------------------

// LeastSquares is the quadratic model ell_j(w) = 0.5 (x_j^T w - y_j)^2.
// Unlike Logistic it permits closed-form optimum checks in tests. X may be
// dense or CSR; gradients cost O(nnz) on sparse data.
type LeastSquares struct {
	X vecmath.AnyMatrix
	Y []float64
}

// NewLeastSquares constructs a least-squares model; y may hold arbitrary
// real targets. It panics if dimensions disagree.
func NewLeastSquares(x vecmath.AnyMatrix, y []float64) *LeastSquares {
	rows, _ := x.Dims()
	if rows != len(y) {
		panic(fmt.Sprintf("model: least squares with %d rows but %d targets", rows, len(y)))
	}
	return &LeastSquares{X: x, Y: y}
}

// Dim returns the feature dimension.
func (m *LeastSquares) Dim() int { _, cols := m.X.Dims(); return cols }

// NumExamples returns the number of data points.
func (m *LeastSquares) NumExamples() int { rows, _ := m.X.Dims(); return rows }

// SubsetGradient implements Model.
func (m *LeastSquares) SubsetGradient(w []float64, rows []int, out []float64) {
	if len(out) != m.Dim() {
		panic(fmt.Sprintf("model: gradient buffer %d != dim %d", len(out), m.Dim()))
	}
	for _, j := range rows {
		resid := m.X.RowDot(j, w) - m.Y[j]
		m.X.RowAxpy(resid, j, out)
	}
}

// SubsetLoss implements Model.
func (m *LeastSquares) SubsetLoss(w []float64, rows []int) float64 {
	var s float64
	for _, j := range rows {
		resid := m.X.RowDot(j, w) - m.Y[j]
		s += 0.5 * resid * resid
	}
	return s
}

// ---------------------------------------------------------------------------
// Finite-difference gradient checking
// ---------------------------------------------------------------------------

// GradCheck compares SubsetGradient against central finite differences of
// SubsetLoss at w over the given rows. It returns the maximum absolute
// component error. Used by tests for every model.
func GradCheck(m Model, w []float64, rows []int, h float64) float64 {
	analytic := make([]float64, m.Dim())
	m.SubsetGradient(w, rows, analytic)
	wp := vecmath.Clone(w)
	var worst float64
	for i := range w {
		orig := wp[i]
		wp[i] = orig + h
		lp := m.SubsetLoss(wp, rows)
		wp[i] = orig - h
		lm := m.SubsetLoss(wp, rows)
		wp[i] = orig
		numeric := (lp - lm) / (2 * h)
		if d := math.Abs(numeric - analytic[i]); d > worst {
			worst = d
		}
	}
	return worst
}
