package model

import (
	"testing"

	"bcc/internal/dataset"
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// sparseDense draws a dense matrix with the given fraction of nonzeros and
// returns it with its CSR compression.
func sparseDense(rng *rngutil.RNG, rows, cols int, density float64) (*vecmath.Matrix, *vecmath.CSR) {
	m := vecmath.NewMatrix(rows, cols)
	for i := range m.Data {
		if rng.Float64() < density {
			m.Data[i] = rng.Normal()
		}
	}
	return m, vecmath.CSRFromDense(m)
}

// TestModelsBitEqualDenseCSR is the model-level half of the sparse
// conformance story: for every model type, evaluating gradients and losses
// against CSR storage holding exactly the dense matrix's nonzeros must
// produce bit-identical floats, over many random seeds and row subsets.
func TestModelsBitEqualDenseCSR(t *testing.T) {
	const rows, cols = 30, 24
	for seed := uint64(1); seed <= 8; seed++ {
		rng := rngutil.New(seed * 131)
		dm, cm := sparseDense(rng, rows, cols, 0.2)
		y := make([]float64, rows)
		for i := range y {
			if rng.Bernoulli(0.5) {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		w := make([]float64, cols)
		for i := range w {
			w[i] = rng.Normal()
		}
		subset := rng.Sample(rows, rows/2)
		models := []struct {
			name         string
			dense, spars Model
		}{
			{"logistic",
				&Logistic{Data: &dataset.Dataset{X: dm, Y: y}, Lambda: 0.1},
				&Logistic{Data: &dataset.Dataset{X: cm, Y: y}, Lambda: 0.1}},
			{"svm",
				&SVM{Data: &dataset.Dataset{X: dm, Y: y}, Lambda: 0.1},
				&SVM{Data: &dataset.Dataset{X: cm, Y: y}, Lambda: 0.1}},
			{"leastsquares",
				NewLeastSquares(dm, y),
				NewLeastSquares(cm, y)},
		}
		for _, tc := range models {
			gd := FullGradient(tc.dense, w)
			gs := FullGradient(tc.spars, w)
			if vecmath.MaxAbsDiff(gd, gs) != 0 {
				t.Fatalf("seed %d %s: full gradients diverged", seed, tc.name)
			}
			sd := make([]float64, cols)
			ss := make([]float64, cols)
			tc.dense.SubsetGradient(w, subset, sd)
			tc.spars.SubsetGradient(w, subset, ss)
			if vecmath.MaxAbsDiff(sd, ss) != 0 {
				t.Fatalf("seed %d %s: subset gradients diverged", seed, tc.name)
			}
			if ld, ls := tc.dense.SubsetLoss(w, subset), tc.spars.SubsetLoss(w, subset); ld != ls {
				t.Fatalf("seed %d %s: losses diverged: %v != %v", seed, tc.name, ld, ls)
			}
		}
	}
}

// TestLeastSquaresCSRGradCheck runs the finite-difference gradient check
// directly against CSR storage.
func TestLeastSquaresCSRGradCheck(t *testing.T) {
	rng := rngutil.New(55)
	_, cm := sparseDense(rng, 25, 8, 0.3)
	y := make([]float64, 25)
	for i := range y {
		y[i] = rng.Normal()
	}
	m := NewLeastSquares(cm, y)
	w := make([]float64, 8)
	for i := range w {
		w[i] = rng.Normal()
	}
	if worst := GradCheck(m, w, AllRows(25), 1e-6); worst > 1e-5 {
		t.Fatalf("CSR least-squares gradient check error %v", worst)
	}
}
