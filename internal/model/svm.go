package model

import (
	"fmt"

	"bcc/internal/dataset"
	"bcc/internal/vecmath"
)

// SVM is an L2-regularized squared-hinge support vector machine:
//
//	ell_j(w) = max(0, 1 - y_j x_j^T w)^2 + (lambda/2)||w||^2 / d_total,
//
// a smooth large-margin alternative to logistic regression that exercises
// the Model interface with a different loss landscape (piecewise quadratic,
// gradient-sparse once points clear the margin). Like all models here it
// returns per-example gradient SUMS, so every coding scheme applies
// unchanged.
type SVM struct {
	Data   *dataset.Dataset
	Lambda float64
}

// NewSVM wraps a +-1-labeled dataset in an unregularized squared-hinge SVM.
func NewSVM(d *dataset.Dataset) *SVM { return &SVM{Data: d} }

// Dim returns the feature dimension.
func (s *SVM) Dim() int { return s.Data.Dim() }

// NumExamples returns the number of data points.
func (s *SVM) NumExamples() int { return s.Data.N() }

// SubsetGradient implements Model.
func (s *SVM) SubsetGradient(w []float64, rows []int, out []float64) {
	if len(out) != s.Dim() {
		panic(fmt.Sprintf("model: gradient buffer %d != dim %d", len(out), s.Dim()))
	}
	x := s.Data.X
	for _, j := range rows {
		yj := s.Data.Y[j]
		margin := yj * x.RowDot(j, w)
		if margin >= 1 {
			continue // point outside the margin contributes nothing
		}
		// d/dw (1 - margin)^2 = -2 (1 - margin) y x
		x.RowAxpy(-2*(1-margin)*yj, j, out)
	}
	if s.Lambda != 0 {
		frac := s.Lambda * float64(len(rows)) / float64(s.NumExamples())
		vecmath.Axpy(frac, w, out)
	}
}

// SubsetLoss implements Model.
func (s *SVM) SubsetLoss(w []float64, rows []int) float64 {
	x := s.Data.X
	var sum float64
	for _, j := range rows {
		margin := s.Data.Y[j] * x.RowDot(j, w)
		if margin < 1 {
			d := 1 - margin
			sum += d * d
		}
	}
	if s.Lambda != 0 {
		sum += 0.5 * s.Lambda * vecmath.Dot(w, w) * float64(len(rows)) / float64(s.NumExamples())
	}
	return sum
}

// Accuracy returns the fraction of points classified correctly by sign.
func (s *SVM) Accuracy(w []float64) float64 {
	correct := 0
	for j := 0; j < s.NumExamples(); j++ {
		score := s.Data.X.RowDot(j, w)
		pred := 1.0
		if score < 0 {
			pred = -1
		}
		if pred == s.Data.Y[j] {
			correct++
		}
	}
	return float64(correct) / float64(s.NumExamples())
}

var _ Model = (*SVM)(nil)
