package model

import (
	"math"
	"testing"

	"bcc/internal/dataset"
	"bcc/internal/linalg"
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

func testLogistic(t *testing.T, lambda float64) *Logistic {
	t.Helper()
	rng := rngutil.New(1)
	d, err := dataset.Generate(dataset.Config{N: 60, Dim: 7, Separation: 1.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return &Logistic{Data: d, Lambda: lambda}
}

func randW(seed uint64, dim int) []float64 {
	rng := rngutil.New(seed)
	w := make([]float64, dim)
	for i := range w {
		w[i] = rng.Normal() * 0.3
	}
	return w
}

func TestLogisticGradCheck(t *testing.T) {
	m := testLogistic(t, 0)
	w := randW(2, m.Dim())
	rows := []int{0, 3, 7, 20, 59}
	if worst := GradCheck(m, w, rows, 1e-6); worst > 1e-4 {
		t.Fatalf("logistic gradient check failed: max err %v", worst)
	}
}

func TestLogisticGradCheckRegularized(t *testing.T) {
	m := testLogistic(t, 0.5)
	w := randW(3, m.Dim())
	rows := []int{1, 2, 3}
	if worst := GradCheck(m, w, rows, 1e-6); worst > 1e-4 {
		t.Fatalf("regularized logistic gradient check failed: max err %v", worst)
	}
}

func TestLogisticSubsetAdditivity(t *testing.T) {
	// Gradient over a union of disjoint subsets equals the sum of subset
	// gradients — the algebraic fact every coding scheme relies on.
	m := testLogistic(t, 0.1)
	w := randW(4, m.Dim())
	a := []int{0, 1, 2, 10}
	b := []int{3, 4, 5}
	union := append(append([]int{}, a...), b...)
	ga := make([]float64, m.Dim())
	gb := make([]float64, m.Dim())
	gu := make([]float64, m.Dim())
	m.SubsetGradient(w, a, ga)
	m.SubsetGradient(w, b, gb)
	m.SubsetGradient(w, union, gu)
	sum := vecmath.Add(ga, gb)
	if d := vecmath.MaxAbsDiff(sum, gu); d > 1e-12 {
		t.Fatalf("subset gradients not additive: %v", d)
	}
}

func TestFullGradientNormalization(t *testing.T) {
	m := testLogistic(t, 0)
	w := randW(5, m.Dim())
	full := FullGradient(m, w)
	raw := make([]float64, m.Dim())
	rows := make([]int, m.NumExamples())
	for i := range rows {
		rows[i] = i
	}
	m.SubsetGradient(w, rows, raw)
	vecmath.Scale(1/float64(m.NumExamples()), raw)
	if d := vecmath.MaxAbsDiff(full, raw); d != 0 {
		t.Fatalf("FullGradient mismatch %v", d)
	}
}

func TestLogisticLossDecreasesUnderGD(t *testing.T) {
	m := testLogistic(t, 0)
	w := make([]float64, m.Dim())
	l0 := FullLoss(m, w)
	for it := 0; it < 50; it++ {
		g := FullGradient(m, w)
		vecmath.Axpy(-0.5, g, w)
	}
	l1 := FullLoss(m, w)
	if l1 >= l0 {
		t.Fatalf("loss did not decrease: %v -> %v", l0, l1)
	}
}

func TestLogisticAccuracyImproves(t *testing.T) {
	rng := rngutil.New(10)
	// Strong separation so the classes are learnable.
	d, _ := dataset.Generate(dataset.Config{N: 600, Dim: 10, Separation: 40, StandardLabels: true}, rng)
	m := NewLogistic(d)
	w := make([]float64, m.Dim())
	base := m.Accuracy(w) // all predicted +1
	for it := 0; it < 200; it++ {
		g := FullGradient(m, w)
		vecmath.Axpy(-1.0, g, w)
	}
	trained := m.Accuracy(w)
	if trained <= base || trained < 0.7 {
		t.Fatalf("accuracy %v (baseline %v) too low after training", trained, base)
	}
}

func TestLogisticGradientBufferPanics(t *testing.T) {
	m := testLogistic(t, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("bad buffer did not panic")
		}
	}()
	m.SubsetGradient(make([]float64, m.Dim()), []int{0}, make([]float64, 1))
}

func TestLeastSquaresGradCheck(t *testing.T) {
	rng := rngutil.New(11)
	x := vecmath.NewMatrix(20, 5)
	for i := range x.Data {
		x.Data[i] = rng.Normal()
	}
	y := make([]float64, 20)
	for i := range y {
		y[i] = rng.Normal()
	}
	m := NewLeastSquares(x, y)
	w := randW(12, 5)
	if worst := GradCheck(m, w, []int{0, 5, 19}, 1e-6); worst > 1e-5 {
		t.Fatalf("least-squares gradient check failed: %v", worst)
	}
}

func TestLeastSquaresClosedForm(t *testing.T) {
	// GD on least squares must approach the QR solution.
	rng := rngutil.New(13)
	n, p := 40, 4
	x := vecmath.NewMatrix(n, p)
	for i := range x.Data {
		x.Data[i] = rng.Normal()
	}
	wTrue := randW(14, p)
	y := vecmath.Gemv(x, wTrue)
	m := NewLeastSquares(x, y)
	wStar, err := linalg.LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, p)
	for it := 0; it < 3000; it++ {
		g := FullGradient(m, w)
		vecmath.Axpy(-0.1, g, w)
	}
	if d := vecmath.MaxAbsDiff(w, wStar); d > 1e-6 {
		t.Fatalf("GD did not reach closed-form optimum: %v", d)
	}
}

func TestLeastSquaresShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched least squares did not panic")
		}
	}()
	NewLeastSquares(vecmath.NewMatrix(3, 2), []float64{1})
}

func TestStableLogistic(t *testing.T) {
	// Large positive and negative margins must not overflow.
	if v := logistic(800); v != 0 {
		t.Fatalf("logistic(800) = %v, want 0", v)
	}
	if v := logistic(-800); math.Abs(v-800) > 1e-9 {
		t.Fatalf("logistic(-800) = %v, want ~800", v)
	}
	if v := sigmoid(800); v != 1 {
		t.Fatalf("sigmoid(800) = %v", v)
	}
	if v := sigmoid(-800); v != 0 {
		t.Fatalf("sigmoid(-800) = %v", v)
	}
}
