package coupon

import (
	"math"
	"testing"
	"testing/quick"

	"bcc/internal/rngutil"
)

func TestHarmonicSmall(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0},
		{1, 1},
		{2, 1.5},
		{3, 1.0 + 0.5 + 1.0/3},
		{5, 137.0 / 60},
	}
	for _, c := range cases {
		if got := Harmonic(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("H_%d = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestHarmonicAsymptotic(t *testing.T) {
	// The asymptotic branch must agree with direct summation at the
	// crossover scale.
	n := 10_000_000
	direct := 0.0
	for k := n; k >= 1; k-- {
		direct += 1 / float64(k)
	}
	const gamma = 0.5772156649015328606
	asym := math.Log(float64(n)) + gamma + 1/(2*float64(n))
	if math.Abs(direct-asym) > 1e-9 {
		t.Fatalf("harmonic branches disagree: %v vs %v", direct, asym)
	}
}

func TestHarmonicNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Harmonic(-1) did not panic")
		}
	}()
	Harmonic(-1)
}

func TestExpectedDraws(t *testing.T) {
	// n=2: E = 2*(1 + 1/2) = 3.
	if got := ExpectedDraws(2); math.Abs(got-3) > 1e-12 {
		t.Fatalf("E[draws] for n=2 = %v", got)
	}
	if got := ExpectedDraws(0); got != 0 {
		t.Fatalf("E[draws] for n=0 = %v", got)
	}
}

func TestExpectedDrawsMatchesMC(t *testing.T) {
	rng := rngutil.New(100)
	for _, n := range []int{2, 5, 10, 25} {
		want := ExpectedDraws(n)
		got := MeanDrawsMC(n, 20000, rng)
		// MC standard error is ~ sqrt(Var)/sqrt(trials); be generous.
		tol := 4 * math.Sqrt(VarianceDraws(n)/20000)
		if math.Abs(got-want) > tol+0.05 {
			t.Fatalf("n=%d: MC mean %v vs analytic %v (tol %v)", n, got, want, tol)
		}
	}
}

func TestVarianceDraws(t *testing.T) {
	// n=2: geometric(1/2) second phase -> Var = (1-p)/p^2 = 2.
	if got := VarianceDraws(2); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Var for n=2 = %v", got)
	}
	if got := VarianceDraws(1); got != 0 {
		t.Fatalf("Var for n=1 = %v", got)
	}
}

func TestBCCRecoveryThreshold(t *testing.T) {
	// Scenario one of the paper: m=50, r=10 -> N=5 batches, K = 5*H_5 ~ 11.42.
	got := BCCRecoveryThreshold(50, 10)
	want := 5 * Harmonic(5)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("K_BCC(50,10) = %v, want %v", got, want)
	}
	if math.Abs(got-11.4166666) > 1e-4 {
		t.Fatalf("K_BCC(50,10) = %v, want ~11.42 (paper observed 11)", got)
	}
	// Scenario two: m=100, r=10 -> N=10, K = 10*H_10 ~ 29.29.
	got2 := BCCRecoveryThreshold(100, 10)
	if math.Abs(got2-10*Harmonic(10)) > 1e-12 {
		t.Fatalf("K_BCC(100,10) = %v", got2)
	}
	// Ceiling behaviour: m=10, r=3 -> N=4.
	if got := BCCRecoveryThreshold(10, 3); math.Abs(got-4*Harmonic(4)) > 1e-12 {
		t.Fatalf("ceil branch: %v", got)
	}
}

func TestLowerBound(t *testing.T) {
	if got := LowerBound(100, 10); got != 10 {
		t.Fatalf("lower bound = %v", got)
	}
}

func TestBoundsOrdering(t *testing.T) {
	// Theorem 1: m/r <= K_BCC(r), with equality only at m/r = 1.
	for m := 10; m <= 200; m += 10 {
		for r := 1; r <= m; r *= 2 {
			lb, ub := LowerBound(m, r), BCCRecoveryThreshold(m, r)
			if lb > ub+1e-9 {
				t.Fatalf("m=%d r=%d: lower bound %v exceeds K_BCC %v", m, r, lb, ub)
			}
		}
	}
}

func TestSurvivalProbSanity(t *testing.T) {
	n := 10
	if got := SurvivalProb(n, n-1); got != 1 {
		t.Fatalf("P(D > n-1) = %v, want 1", got)
	}
	// Monotone non-increasing in t.
	prev := 1.0
	for tt := n; tt < 200; tt++ {
		p := SurvivalProb(n, tt)
		if p > prev+1e-9 {
			t.Fatalf("survival increased at t=%d: %v > %v", tt, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("survival out of range at t=%d: %v", tt, p)
		}
		prev = p
	}
	if prev > 1e-6 {
		t.Fatalf("survival should be ~0 at t=200 for n=10, got %v", prev)
	}
}

func TestSurvivalProbMatchesExpectation(t *testing.T) {
	// E[D] = sum_{t>=0} P(D > t); check against n*H_n.
	n := 12
	var e float64
	for tt := 0; tt < 2000; tt++ {
		e += SurvivalProb(n, tt)
	}
	want := ExpectedDraws(n)
	if math.Abs(e-want) > 1e-6 {
		t.Fatalf("sum of survival = %v, want %v", e, want)
	}
}

func TestSurvivalProbMatchesMC(t *testing.T) {
	rng := rngutil.New(200)
	n, tt, trials := 8, 30, 40000
	exceed := 0
	for i := 0; i < trials; i++ {
		if SimulateDraws(n, rng) > tt {
			exceed++
		}
	}
	got := float64(exceed) / float64(trials)
	want := SurvivalProb(n, tt)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("P(D>%d) MC %v vs analytic %v", tt, got, want)
	}
}

func TestTailBound(t *testing.T) {
	// Lemma 2: Pr(M >= (1+eps) n ln n) <= n^{-eps}.
	if got := TailBound(100, 1); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("TailBound(100,1) = %v", got)
	}
	if got := TailBound(5, 0); got != 1 {
		t.Fatalf("TailBound eps=0 = %v", got)
	}
}

func TestTailBoundHoldsEmpirically(t *testing.T) {
	rng := rngutil.New(300)
	n, eps, trials := 20, 0.5, 30000
	threshold := (1 + eps) * float64(n) * math.Log(float64(n))
	exceed := 0
	for i := 0; i < trials; i++ {
		if float64(SimulateDraws(n, rng)) >= threshold {
			exceed++
		}
	}
	got := float64(exceed) / float64(trials)
	bound := TailBound(n, eps)
	if got > bound+0.01 {
		t.Fatalf("empirical tail %v exceeds Lemma 2 bound %v", got, bound)
	}
}

func TestBatchExpectedDrawsEdges(t *testing.T) {
	// r == m: one draw covers everything.
	if got := BatchExpectedDraws(10, 10); got != 1 {
		t.Fatalf("BatchExpectedDraws(10,10) = %v", got)
	}
	// r == 1 reduces to the classic collector.
	for _, m := range []int{2, 5, 12} {
		got := BatchExpectedDraws(m, 1)
		want := ExpectedDraws(m)
		if math.Abs(got-want) > 1e-6*want {
			t.Fatalf("m=%d r=1: %v vs classic %v", m, got, want)
		}
	}
}

func TestBatchExpectedDrawsMatchesMC(t *testing.T) {
	rng := rngutil.New(400)
	cases := []struct{ m, r int }{{10, 2}, {20, 5}, {50, 10}, {30, 3}}
	for _, c := range cases {
		want := BatchExpectedDraws(c.m, c.r)
		got := MeanBatchDrawsMC(c.m, c.r, 20000, rng)
		if math.Abs(got-want) > 0.05*want+0.1 {
			t.Fatalf("m=%d r=%d: MC %v vs analytic %v", c.m, c.r, got, want)
		}
	}
}

func TestRandomizedVsBCCOrdering(t *testing.T) {
	// Paper Fig. 2: the randomized scheme needs more draws than BCC's
	// batched collector (it is chasing m coupons, not m/r), and both exceed
	// the lower bound.
	m := 100
	for r := 2; r <= 50; r += 4 {
		lb := LowerBound(m, r)
		bcc := BCCRecoveryThreshold(m, r)
		rnd := RandomizedRecoveryThreshold(m, r)
		if !(lb <= bcc+1e-9) {
			t.Fatalf("r=%d: lb %v > bcc %v", r, lb, bcc)
		}
		if !(bcc <= rnd+1e-9) {
			t.Fatalf("r=%d: bcc %v > randomized %v", r, bcc, rnd)
		}
	}
}

func TestRandomizedCommunicationLoad(t *testing.T) {
	m, r := 100, 10
	if got, want := RandomizedCommunicationLoad(m, r), float64(r)*BatchExpectedDraws(m, r); got != want {
		t.Fatalf("comm load %v, want %v", got, want)
	}
	// ~ m log m within a factor of 2 at this scale.
	approx := float64(m) * math.Log(float64(m))
	ratio := RandomizedCommunicationLoad(m, r) / approx
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("comm load ratio to m log m = %v", ratio)
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker(3)
	if tr.Complete() {
		t.Fatal("fresh tracker complete")
	}
	if !tr.Offer(0) {
		t.Fatal("first offer should be new")
	}
	if tr.Offer(0) {
		t.Fatal("duplicate offer should not be new")
	}
	tr.Offer(1)
	if tr.Remaining() != 1 {
		t.Fatalf("remaining = %d", tr.Remaining())
	}
	tr.Offer(2)
	if !tr.Complete() {
		t.Fatal("tracker should be complete")
	}
	tr.Reset()
	if tr.Complete() || tr.Remaining() != 3 || tr.Covered(0) {
		t.Fatal("reset did not clear state")
	}
}

func TestTrackerOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range offer did not panic")
		}
	}()
	NewTracker(2).Offer(5)
}

// Property: simulated draw counts are always >= n and the tracker agrees
// with the simulator's notion of completion.
func TestSimulatePropertyMinimumDraws(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rngutil.New(seed)
		n := 1 + rng.Intn(40)
		return SimulateDraws(n, rng) >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchSimulatePropertyMinimumDraws(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rngutil.New(seed)
		m := 2 + rng.Intn(40)
		r := 1 + rng.Intn(m)
		d := SimulateBatchDraws(m, r, rng)
		min := (m + r - 1) / r
		return d >= min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
