package coupon

import (
	"math"
	"testing"

	"bcc/internal/rngutil"
)

func TestPMFSumsToOne(t *testing.T) {
	n := 10
	var sum float64
	for tt := n; tt < 500; tt++ {
		sum += PMF(n, tt)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PMF mass %v", sum)
	}
}

func TestPMFMeanMatchesExpectedDraws(t *testing.T) {
	n := 8
	var mean float64
	for tt := n; tt < 400; tt++ {
		mean += float64(tt) * PMF(n, tt)
	}
	want := ExpectedDraws(n)
	if math.Abs(mean-want) > 1e-4 {
		t.Fatalf("PMF mean %v vs %v", mean, want)
	}
}

func TestPMFZeroBelowMinimum(t *testing.T) {
	if PMF(5, 4) != 0 || PMF(5, 0) != 0 {
		t.Fatal("PMF must vanish below n draws")
	}
	if PMF(5, 5) <= 0 {
		t.Fatal("PMF at minimum draws must be positive")
	}
}

func TestCDFMonotone(t *testing.T) {
	n := 12
	prev := -1.0
	for tt := 0; tt < 300; tt++ {
		c := CDF(n, tt)
		if c < prev-1e-12 {
			t.Fatalf("CDF decreased at t=%d", tt)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of range at t=%d: %v", tt, c)
		}
		prev = c
	}
	if CDF(n, 1000) < 0.999999 {
		t.Fatal("CDF must approach 1")
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	n := 15
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		tq := Quantile(n, q)
		if CDF(n, tq) < q {
			t.Fatalf("q=%v: CDF(%d)=%v below q", q, tq, CDF(n, tq))
		}
		if tq > n && CDF(n, tq-1) >= q {
			t.Fatalf("q=%v: %d is not the smallest satisfying t", q, tq)
		}
	}
}

func TestQuantileMatchesMC(t *testing.T) {
	rng := rngutil.New(950)
	n, q := 10, 0.9
	tq := Quantile(n, q)
	within := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if SimulateDraws(n, rng) <= tq {
			within++
		}
	}
	got := float64(within) / trials
	if got < q-0.02 {
		t.Fatalf("MC coverage %v below target %v at t=%d", got, q, tq)
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("q=1 accepted")
		}
	}()
	Quantile(5, 1)
}

func TestPartialExpectedDraws(t *testing.T) {
	if d := ExpectedDrawsPartialMatchesFull(20); d > 1e-12 {
		t.Fatalf("partial(n,n) != full: %v", d)
	}
	if got := PartialExpectedDraws(10, 0); got != 0 {
		t.Fatalf("k=0 cost %v", got)
	}
	// First coupon is free-ish: n/n = 1 draw.
	if got := PartialExpectedDraws(10, 1); got != 1 {
		t.Fatalf("k=1 cost %v", got)
	}
}

func TestPartialMatchesMC(t *testing.T) {
	rng := rngutil.New(951)
	n, k := 12, 8
	want := PartialExpectedDraws(n, k)
	var sum float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		seen := make([]bool, n)
		distinct, draws := 0, 0
		for distinct < k {
			draws++
			c := rng.Intn(n)
			if !seen[c] {
				seen[c] = true
				distinct++
			}
		}
		sum += float64(draws)
	}
	got := sum / trials
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("partial MC %v vs analytic %v", got, want)
	}
}

func TestMarginalDrawCostGrows(t *testing.T) {
	n := 20
	prev := 0.0
	var total float64
	for k := 1; k <= n; k++ {
		c := MarginalDrawCost(n, k)
		if c < prev {
			t.Fatalf("marginal cost fell at k=%d", k)
		}
		prev = c
		total += c
	}
	// Telescoping: sum of marginals = full expectation.
	if math.Abs(total-ExpectedDraws(n)) > 1e-9 {
		t.Fatalf("marginals sum %v != %v", total, ExpectedDraws(n))
	}
	// The last coupon alone costs n draws in expectation.
	if MarginalDrawCost(n, n) != float64(n) {
		t.Fatal("last coupon must cost n draws")
	}
}

func TestWorkersForConfidence(t *testing.T) {
	// Need more workers for higher confidence.
	lo := WorkersForConfidence(10, 0.5)
	hi := WorkersForConfidence(10, 0.99)
	if hi <= lo {
		t.Fatalf("confidence 0.99 needs %d <= %d", hi, lo)
	}
	// And always at least n.
	if lo < 10 {
		t.Fatalf("quantile %d below minimum draws", lo)
	}
}
