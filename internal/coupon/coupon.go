// Package coupon implements the coupon-collector mathematics that underpins
// the BCC scheme's analysis (Theorem 1 and Lemma 2 of the paper) and the
// recovery-threshold curves of Fig. 2.
//
// Three collectors appear in the paper:
//
//   - the classic collector (one uniformly random coupon per draw), which
//     models BCC's message collection over N = ceil(m/r) batches;
//   - the batch / group-drawing collector (each draw reveals r distinct
//     coupons sampled without replacement from m), which models the "simple
//     randomized scheme" of eqs. (5)-(6);
//   - the weighted collector used by the heterogeneous extension, handled in
//     package hetero by direct Monte-Carlo over worker finish times.
package coupon

import (
	"fmt"
	"math"

	"bcc/internal/rngutil"
)

// Harmonic returns the n-th harmonic number H_n = sum_{k=1..n} 1/k.
// H_0 = 0. For n > 1e7 it switches to the asymptotic expansion
// ln n + gamma + 1/(2n) - 1/(12n^2), whose error is far below 1e-12 there.
func Harmonic(n int) float64 {
	if n < 0 {
		panic(fmt.Sprintf("coupon: Harmonic of negative n=%d", n))
	}
	if n <= 1e7 {
		// Sum small terms first for accuracy.
		var h float64
		for k := n; k >= 1; k-- {
			h += 1 / float64(k)
		}
		return h
	}
	const gamma = 0.5772156649015328606
	fn := float64(n)
	return math.Log(fn) + gamma + 1/(2*fn) - 1/(12*fn*fn)
}

// ExpectedDraws returns the expected number of uniform draws (with
// replacement) needed to collect all n coupon types: n * H_n.
func ExpectedDraws(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * Harmonic(n)
}

// VarianceDraws returns the variance of the classic collector's draw count:
// sum_{i=1..n-1} (1-p_i)/p_i^2 with p_i = (n-i)/n, which simplifies to
// n^2 * sum_{k=1..n-1} 1/k^2 - n*H_{n-1} ... computed directly for clarity.
func VarianceDraws(n int) float64 {
	if n <= 1 {
		return 0
	}
	var v float64
	fn := float64(n)
	for i := 1; i < n; i++ {
		p := float64(n-i) / fn
		v += (1 - p) / (p * p)
	}
	return v
}

// BCCRecoveryThreshold returns the paper's K_BCC(r) = ceil(m/r) * H_{ceil(m/r)}
// (eq. 2 / Theorem 1) — the expected number of worker messages the master
// collects before every one of the ceil(m/r) batches is covered.
func BCCRecoveryThreshold(m, r int) float64 {
	if m <= 0 || r <= 0 {
		panic(fmt.Sprintf("coupon: BCCRecoveryThreshold with m=%d r=%d", m, r))
	}
	n := (m + r - 1) / r // ceil(m/r)
	return ExpectedDraws(n)
}

// LowerBound returns the paper's recovery-threshold lower bound m/r
// (Theorem 1): no scheme with computational load r can finish, on average,
// before m/r disjoint result sets arrive.
func LowerBound(m, r int) float64 {
	if m <= 0 || r <= 0 {
		panic(fmt.Sprintf("coupon: LowerBound with m=%d r=%d", m, r))
	}
	return float64(m) / float64(r)
}

// SurvivalProb returns P(D > t) for the classic n-type collector after t
// draws, by inclusion-exclusion:
//
//	P(D > t) = sum_{j=1..n} (-1)^{j+1} C(n,j) (1 - j/n)^t.
//
// Terms are accumulated in order; for the moderate n (<= a few hundred) used
// in the experiments this is numerically adequate, and tests cross-check it
// against Monte-Carlo.
func SurvivalProb(n int, t int) float64 {
	if n <= 0 {
		return 0
	}
	if t < n {
		return 1 // cannot have collected n types in fewer than n draws
	}
	var p float64
	logC := 0.0 // log C(n, j) built incrementally
	for j := 1; j <= n; j++ {
		logC += math.Log(float64(n-j+1)) - math.Log(float64(j))
		frac := 1 - float64(j)/float64(n)
		var term float64
		if frac > 0 {
			term = math.Exp(logC + float64(t)*math.Log(frac))
		} else if t == 0 {
			term = math.Exp(logC)
		}
		if j%2 == 1 {
			p += term
		} else {
			p -= term
		}
	}
	// Clamp the tiny negative excursions of alternating-series cancellation.
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// TailBound returns the right-hand side of Lemma 2 (Theorem 1.23 in Auger &
// Doerr): Pr(M >= (1+eps) n ln n) <= n^{-eps}.
func TailBound(n int, eps float64) float64 {
	if eps < 0 {
		panic("coupon: TailBound with negative eps")
	}
	if n <= 1 {
		return 1
	}
	return math.Pow(float64(n), -eps)
}

// SimulateDraws runs one classic collector process over n types and returns
// the number of draws needed to see every type.
func SimulateDraws(n int, rng *rngutil.RNG) int {
	if n <= 0 {
		return 0
	}
	seen := make([]bool, n)
	remaining := n
	draws := 0
	for remaining > 0 {
		draws++
		c := rng.Intn(n)
		if !seen[c] {
			seen[c] = true
			remaining--
		}
	}
	return draws
}

// MeanDrawsMC estimates E[draws] for the classic collector by Monte-Carlo
// over `trials` independent runs.
func MeanDrawsMC(n, trials int, rng *rngutil.RNG) float64 {
	if trials <= 0 {
		panic("coupon: MeanDrawsMC with no trials")
	}
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(SimulateDraws(n, rng))
	}
	return sum / float64(trials)
}

// ---------------------------------------------------------------------------
// Batch (group-drawing) collector — the "simple randomized scheme"
// ---------------------------------------------------------------------------

// BatchExpectedDraws returns the expected number of draws to cover all m
// coupons when each draw reveals r distinct coupons chosen uniformly without
// replacement (the simple randomized scheme of eq. 5).
//
// It is computed exactly from the absorbing Markov chain on the number of
// covered coupons c: a draw from state c covers k new coupons with
// hypergeometric probability P(k|c) = C(m-c,k) C(c,r-k) / C(m,r), so
//
//	E[c] = (1 + sum_{k>=1} P(k|c) E[c+k]) / (1 - P(0|c)),  E[m] = 0,
//
// and the answer is E[0]. This avoids the catastrophic cancellation of the
// direct inclusion-exclusion formula. Defined for 1 <= r <= m.
func BatchExpectedDraws(m, r int) float64 {
	if r <= 0 || m <= 0 || r > m {
		panic(fmt.Sprintf("coupon: BatchExpectedDraws with m=%d r=%d", m, r))
	}
	if r == m {
		return 1
	}
	// e[c] = expected additional draws given c coupons already covered.
	e := make([]float64, m+1)
	for c := m - 1; c >= 0; c-- {
		pmf := hypergeomPMF(m, c, r)
		var acc float64
		for k := 1; k < len(pmf); k++ {
			if pmf[k] > 0 {
				acc += pmf[k] * e[c+k]
			}
		}
		p0 := pmf[0]
		if p0 >= 1 {
			// Unreachable for valid inputs (a draw from c < m covers a new
			// coupon with positive probability), but guard against rounding.
			p0 = 1 - 1e-15
		}
		e[c] = (1 + acc) / (1 - p0)
	}
	return e[0]
}

// hypergeomPMF returns P(K = k) for k = 0..min(r, m-c): the probability that
// a uniform r-subset of m coupons contains exactly k of the m-c uncovered
// ones. Computed in log space via Lgamma for stability.
func hypergeomPMF(m, c, r int) []float64 {
	kmax := r
	if m-c < kmax {
		kmax = m - c
	}
	pmf := make([]float64, kmax+1)
	logCmr := logChoose(m, r)
	for k := 0; k <= kmax; k++ {
		if r-k > c { // not enough already-covered coupons to fill the draw
			continue
		}
		pmf[k] = math.Exp(logChoose(m-c, k) + logChoose(c, r-k) - logCmr)
	}
	return pmf
}

// logChoose returns log C(n, k), or -Inf when the coefficient is zero.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk1, _ := math.Lgamma(float64(k + 1))
	lnk1, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk1 - lnk1
}

// RandomizedRecoveryThreshold is the expected number of workers the master
// must hear from under the simple randomized scheme with per-worker load r
// over m examples — exactly BatchExpectedDraws(m, r), which is ~ (m/r) ln m
// (paper eq. 5). Exposed under the paper's name for the Fig. 2 harness.
func RandomizedRecoveryThreshold(m, r int) float64 { return BatchExpectedDraws(m, r) }

// RandomizedCommunicationLoad is the expected communication load of the
// simple randomized scheme: each counted worker ships r unit-size partial
// gradients, so L = r * K_random ~ m log m (paper eq. 6).
func RandomizedCommunicationLoad(m, r int) float64 {
	return float64(r) * BatchExpectedDraws(m, r)
}

// SimulateBatchDraws runs one batch-collector process: draws of r distinct
// coupons from m until all are covered; returns the number of draws.
func SimulateBatchDraws(m, r int, rng *rngutil.RNG) int {
	if r <= 0 || m <= 0 || r > m {
		panic(fmt.Sprintf("coupon: SimulateBatchDraws with m=%d r=%d", m, r))
	}
	seen := make([]bool, m)
	remaining := m
	draws := 0
	for remaining > 0 {
		draws++
		for _, c := range rng.Sample(m, r) {
			if !seen[c] {
				seen[c] = true
				remaining--
			}
		}
	}
	return draws
}

// MeanBatchDrawsMC estimates the batch collector's expected draw count by
// Monte-Carlo.
func MeanBatchDrawsMC(m, r, trials int, rng *rngutil.RNG) float64 {
	if trials <= 0 {
		panic("coupon: MeanBatchDrawsMC with no trials")
	}
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(SimulateBatchDraws(m, r, rng))
	}
	return sum / float64(trials)
}

// Tracker incrementally tracks coverage of n coupon types; it is the
// decoding-side primitive shared by the BCC decoder and the randomized
// decoder. The zero value is unusable; create with NewTracker.
type Tracker struct {
	seen      []bool
	remaining int
}

// NewTracker returns a Tracker over n types, all initially uncovered.
func NewTracker(n int) *Tracker {
	if n < 0 {
		panic("coupon: NewTracker with negative n")
	}
	return &Tracker{seen: make([]bool, n), remaining: n}
}

// Offer marks coupon c covered and reports whether it was new. It panics if
// c is out of range.
func (t *Tracker) Offer(c int) bool {
	if c < 0 || c >= len(t.seen) {
		panic(fmt.Sprintf("coupon: Tracker.Offer out of range: %d of %d", c, len(t.seen)))
	}
	if t.seen[c] {
		return false
	}
	t.seen[c] = true
	t.remaining--
	return true
}

// Covered reports whether coupon c has been seen.
func (t *Tracker) Covered(c int) bool { return t.seen[c] }

// Complete reports whether all types are covered.
func (t *Tracker) Complete() bool { return t.remaining == 0 }

// Remaining returns the number of uncovered types.
func (t *Tracker) Remaining() int { return t.remaining }

// Reset marks all types uncovered again, reusing storage.
func (t *Tracker) Reset() {
	for i := range t.seen {
		t.seen[i] = false
	}
	t.remaining = len(t.seen)
}
