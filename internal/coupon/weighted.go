package coupon

import (
	"fmt"
	"math"

	"bcc/internal/rngutil"
)

// Weighted coupon collection models BCC under a SKEWED batch-selection
// distribution — e.g. workers preferring cached or nearby batches. The
// paper's analysis assumes uniform selection; these routines quantify how
// the recovery threshold inflates as the selection distribution departs
// from uniform (the `skew` experiment).

// WeightedExpectedDraws returns the expected number of draws to collect all
// coupon types when each draw lands on type i with probability p[i]
// (p must be positive and sum to ~1). It evaluates the Poissonization
// identity
//
//	E[D] = integral_0^inf ( 1 - prod_i (1 - exp(-p_i t)) ) dt
//
// with the substitution u = 1 - exp(-pmin*t) (mapping [0,inf) to [0,1))
// and composite Simpson quadrature, which is accurate to ~1e-6 for the
// N <= a few hundred used here.
func WeightedExpectedDraws(p []float64) float64 {
	n := len(p)
	if n == 0 {
		return 0
	}
	var sum float64
	pmin := math.Inf(1)
	for i, v := range p {
		if v <= 0 {
			panic(fmt.Sprintf("coupon: WeightedExpectedDraws with p[%d]=%v", i, v))
		}
		sum += v
		if v < pmin {
			pmin = v
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		panic(fmt.Sprintf("coupon: weights sum to %v, want 1", sum))
	}
	// Integrand after substitution u = 1 - exp(-pmin t):
	//   t(u)  = -ln(1-u)/pmin,  dt = du / (pmin (1-u))
	//   f(u)  = (1 - prod_i (1-(1-u)^{p_i/pmin})) / (pmin (1-u))
	// As u -> 1, 1-(1-u)^{q} -> 1 for q > 0 faster than the 1/(1-u) pole
	// only when the slowest exponent dominates; the pole cancels because
	// the product contains the factor for pmin itself: 1-(1-u)^1 = u, so
	// (1 - prod) <= (1-u)*C near u=1 ... handle the endpoint by evaluating
	// the limit 0 explicitly.
	// The integrand is bounded: near u=1 the product contains the pmin
	// factor 1-(1-u)^1 = u, so 1-prod = O(1-u) cancels the 1/(1-u) pole,
	// giving f(u) <= n/pmin everywhere.
	ratios := make([]float64, n)
	for i, v := range p {
		ratios[i] = v / pmin
	}
	f := func(u float64) float64 {
		// The u -> 1 limit is finite ((#minimal-weight types)/pmin) but the
		// direct expression is 0/0 there; evaluate just inside the
		// boundary, where both numerator and denominator are ~1e-9 scale
		// and their ratio is accurate.
		if u > 1-1e-9 {
			u = 1 - 1e-9
		}
		oneMinusU := 1 - u
		prod := 1.0
		for _, q := range ratios {
			prod *= 1 - math.Pow(oneMinusU, q)
		}
		return (1 - prod) / (pmin * oneMinusU)
	}
	const steps = 20000 // even
	h := 1.0 / steps
	total := f(0) + f(1) // endpoints (left: 1/pmin; right: finite limit)
	for i := 1; i < steps; i++ {
		u := float64(i) * h
		if i%2 == 1 {
			total += 4 * f(u)
		} else {
			total += 2 * f(u)
		}
	}
	return total * h / 3
}

// SimulateWeightedDraws runs one weighted collector process and returns the
// number of draws to cover all types. Weights need not be normalized.
func SimulateWeightedDraws(weights []float64, rng *rngutil.RNG) int {
	n := len(weights)
	if n == 0 {
		return 0
	}
	cum := make([]float64, n)
	var total float64
	for i, w := range weights {
		if w <= 0 {
			panic(fmt.Sprintf("coupon: SimulateWeightedDraws with weight[%d]=%v", i, w))
		}
		total += w
		cum[i] = total
	}
	seen := make([]bool, n)
	remaining := n
	draws := 0
	for remaining > 0 {
		draws++
		x := rng.Float64() * total
		// Binary search the cumulative table.
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if !seen[lo] {
			seen[lo] = true
			remaining--
		}
	}
	return draws
}

// ZipfWeights returns N normalized weights w_i ∝ 1/i^s (i = 1..N); s = 0 is
// uniform, larger s is more skewed.
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		panic("coupon: ZipfWeights with n <= 0")
	}
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}
