package coupon

import (
	"math"
	"testing"

	"bcc/internal/rngutil"
)

func TestWeightedExpectedDrawsUniformReducesToClassic(t *testing.T) {
	for _, n := range []int{1, 2, 5, 20, 50} {
		p := make([]float64, n)
		for i := range p {
			p[i] = 1 / float64(n)
		}
		got := WeightedExpectedDraws(p)
		want := ExpectedDraws(n)
		if math.Abs(got-want) > 1e-4*want {
			t.Fatalf("n=%d: weighted %v vs classic %v", n, got, want)
		}
	}
}

func TestWeightedExpectedDrawsTwoTypeClosedForm(t *testing.T) {
	// Inclusion-exclusion: E = 1/p1 + 1/p2 - 1/(p1+p2).
	p1, p2 := 1.0/3, 2.0/3
	want := 1/p1 + 1/p2 - 1
	got := WeightedExpectedDraws([]float64{p1, p2})
	if math.Abs(got-want) > 1e-5 {
		t.Fatalf("two-type: %v vs %v", got, want)
	}
}

func TestWeightedExpectedDrawsThreeTypeClosedForm(t *testing.T) {
	p := []float64{0.2, 0.3, 0.5}
	want := 0.0
	// E = sum 1/p_i - sum 1/(p_i+p_j) + 1/(p1+p2+p3).
	want += 1/p[0] + 1/p[1] + 1/p[2]
	want -= 1/(p[0]+p[1]) + 1/(p[0]+p[2]) + 1/(p[1]+p[2])
	want += 1.0
	got := WeightedExpectedDraws(p)
	if math.Abs(got-want) > 1e-5 {
		t.Fatalf("three-type: %v vs %v", got, want)
	}
}

func TestWeightedMatchesMC(t *testing.T) {
	rng := rngutil.New(900)
	w := ZipfWeights(15, 0.8)
	want := WeightedExpectedDraws(w)
	var sum float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += float64(SimulateWeightedDraws(w, rng))
	}
	got := sum / trials
	if math.Abs(got-want) > 0.03*want {
		t.Fatalf("MC %v vs analytic %v", got, want)
	}
}

func TestSkewInflatesThreshold(t *testing.T) {
	// The more skewed the selection, the more draws coverage needs.
	prev := 0.0
	for _, s := range []float64{0, 0.5, 1.0, 1.5} {
		e := WeightedExpectedDraws(ZipfWeights(20, s))
		if e <= prev {
			t.Fatalf("skew s=%v did not inflate threshold: %v <= %v", s, e, prev)
		}
		prev = e
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(10, 1)
	var sum float64
	for i, v := range w {
		if v <= 0 {
			t.Fatalf("weight %d non-positive", i)
		}
		if i > 0 && v > w[i-1] {
			t.Fatal("zipf weights must be non-increasing")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum %v", sum)
	}
	// s = 0 is uniform.
	u := ZipfWeights(4, 0)
	for _, v := range u {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("s=0 not uniform: %v", u)
		}
	}
}

func TestWeightedPanicsOnBadInput(t *testing.T) {
	for _, bad := range [][]float64{{0.5, 0.6}, {0.5, -0.1, 0.6}, {1.2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("weights %v accepted", bad)
				}
			}()
			WeightedExpectedDraws(bad)
		}()
	}
}

func TestSimulateWeightedUniformAgreesWithClassic(t *testing.T) {
	rng := rngutil.New(901)
	w := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	var sum float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += float64(SimulateWeightedDraws(w, rng))
	}
	got := sum / trials
	want := ExpectedDraws(8)
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("uniform weighted MC %v vs classic %v", got, want)
	}
}
