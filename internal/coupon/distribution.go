package coupon

import (
	"fmt"
	"math"
)

// Distribution functions of the classic collector beyond the mean: the PMF
// and quantiles back capacity planning ("how many workers do I need so BCC
// finishes with probability 99%?") and the partial-coverage expectations
// back the approximate-coverage extension (coding.BCCApprox).

// PMF returns P(D = t) for the classic n-type collector: the probability
// that coverage completes exactly at draw t. Computed as the difference of
// survival probabilities, P(D > t-1) - P(D > t).
func PMF(n, t int) float64 {
	if n <= 0 || t < n {
		return 0
	}
	p := SurvivalProb(n, t-1) - SurvivalProb(n, t)
	if p < 0 {
		return 0
	}
	return p
}

// CDF returns P(D <= t) = 1 - SurvivalProb(n, t).
func CDF(n, t int) float64 {
	if n <= 0 {
		return 1
	}
	return 1 - SurvivalProb(n, t)
}

// Quantile returns the smallest t with P(D <= t) >= q, i.e. the number of
// draws that suffices with probability q. It panics for q outside (0, 1).
func Quantile(n int, q float64) int {
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("coupon: Quantile q=%v outside (0,1)", q))
	}
	if n <= 0 {
		return 0
	}
	// The mean is n*H_n and the tail decays geometrically; start at the
	// minimum and walk. For the n used here (<= a few hundred) the walk is
	// short; a doubling search guards pathological q.
	t := n
	for CDF(n, t) < q {
		step := 1 + t/8
		t += step
	}
	// Walk back to the smallest satisfying t.
	for t > n && CDF(n, t-1) >= q {
		t--
	}
	return t
}

// PartialExpectedDraws returns the expected draws to collect k DISTINCT
// coupons of n types: sum_{i=0..k-1} n/(n-i). For k = n it equals
// ExpectedDraws(n); this is the analytic threshold of the approximate-
// coverage BCC extension. It panics if k > n or k < 0.
func PartialExpectedDraws(n, k int) float64 {
	if k < 0 || k > n {
		panic(fmt.Sprintf("coupon: PartialExpectedDraws k=%d of n=%d", k, n))
	}
	var e float64
	for i := 0; i < k; i++ {
		e += float64(n) / float64(n-i)
	}
	return e
}

// MarginalDrawCost returns the expected number of additional draws to go
// from k-1 to k distinct coupons: n/(n-k+1). It quantifies why the LAST
// coupons dominate the collector's cost (the approximate-coverage story).
func MarginalDrawCost(n, k int) float64 {
	if k <= 0 || k > n {
		panic(fmt.Sprintf("coupon: MarginalDrawCost k=%d of n=%d", k, n))
	}
	return float64(n) / float64(n-k+1)
}

// WorkersForConfidence returns the number of workers n_w such that, with
// every worker drawing one uniform batch of N types, coverage completes
// within n_w draws with probability at least q — a capacity-planning helper
// for provisioning BCC clusters.
func WorkersForConfidence(nTypes int, q float64) int {
	return Quantile(nTypes, q)
}

// ExpectedDrawsPartialMatchesFull is a consistency helper used in tests:
// |PartialExpectedDraws(n,n) - ExpectedDraws(n)|.
func ExpectedDrawsPartialMatchesFull(n int) float64 {
	return math.Abs(PartialExpectedDraws(n, n) - ExpectedDraws(n))
}
